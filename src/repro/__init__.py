"""repro — a full Python reproduction of *SlimSell: A Vectorizable Graph
Representation for Breadth-First Search* (Besta, Marending, Solomonik,
Hoefler; IEEE IPDPS 2017).

Quickstart
----------
>>> from repro import kronecker, bfs_spmv
>>> g = kronecker(scale=10, edgefactor=8, seed=1)
>>> res = bfs_spmv(g, root=0, semiring="sel-max", C=16, slimwork=True)
>>> res.reached, res.n_iterations  # doctest: +SKIP
(1018, 7)

Layout
------
``repro.vec``       simulated C-lane vector ISA + the paper's 7 machines
``repro.graphs``    Graph core, Kronecker/ER generators, Table IV proxies
``repro.formats``   CSR, AL, Sell-C-σ, SlimSell + storage accounting
``repro.semirings`` tropical / real / boolean / sel-max BFS algebra
``repro.bfs``       BFS-SpMV engines (SlimWork, SlimChunk), baselines, DP
``repro.sched``     omp-static/dynamic scheduling simulation
``repro.perf``      cost model + timing/amortization harness
``repro.analysis``  Table II work bounds, Eq. (1)/(2)
"""

from repro.apps import (
    Reachability,
    betweenness_centrality,
    components_via_bfs,
    pagerank,
    sssp_dijkstra,
    sssp_spmv,
)
from repro.bfs import (
    BFSResult,
    BFSSpMV,
    SlimSpMV,
    bfs_direction_optimizing,
    bfs_hybrid,
    bfs_serial,
    bfs_spmspv,
    bfs_spmv,
    bfs_top_down,
    dp_transform,
)
from repro.formats import (
    AdjacencyList,
    CSRMatrix,
    Ellpack,
    SellCSigma,
    SlimSell,
    storage_report,
)
from repro.graphs import (
    Graph,
    erdos_renyi,
    erdos_renyi_nm,
    kronecker,
    realworld_proxy,
)
from repro.semirings import SEMIRINGS, get_semiring
from repro.vec import MACHINES, Machine, OpCounters, VectorUnit, get_machine

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "kronecker",
    "erdos_renyi",
    "erdos_renyi_nm",
    "realworld_proxy",
    "SellCSigma",
    "SlimSell",
    "CSRMatrix",
    "AdjacencyList",
    "Ellpack",
    "storage_report",
    "BFSSpMV",
    "bfs_spmv",
    "bfs_spmspv",
    "SlimSpMV",
    "bfs_top_down",
    "bfs_serial",
    "bfs_direction_optimizing",
    "dp_transform",
    "BFSResult",
    "betweenness_centrality",
    "pagerank",
    "components_via_bfs",
    "Reachability",
    "sssp_spmv",
    "sssp_dijkstra",
    "bfs_hybrid",
    "SEMIRINGS",
    "get_semiring",
    "VectorUnit",
    "OpCounters",
    "Machine",
    "MACHINES",
    "get_machine",
    "__version__",
]
