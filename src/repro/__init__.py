"""repro — a full Python reproduction of *SlimSell: A Vectorizable Graph
Representation for Breadth-First Search* (Besta, Marending, Solomonik,
Hoefler; IEEE IPDPS 2017).

Quickstart
----------
>>> from repro import kronecker, bfs_spmv
>>> g = kronecker(scale=10, edgefactor=8, seed=1)
>>> res = bfs_spmv(g, root=0, semiring="sel-max", C=16, slimwork=True)
>>> res.reached, res.n_iterations  # doctest: +SKIP
(1018, 7)

Layout
------
``repro.vec``       simulated C-lane vector ISA + the paper's 7 machines
``repro.graphs``    Graph core, Kronecker/ER generators, Table IV proxies
``repro.formats``   CSR, AL, Sell-C-σ, SlimSell + storage accounting
``repro.semirings`` tropical / real / boolean / sel-max BFS algebra
``repro.bfs``       BFS-SpMV engines (SlimWork, SlimChunk), baselines, DP
``repro.sched``     omp-static/dynamic scheduling simulation
``repro.perf``      cost model + timing/amortization harness
``repro.analysis``  Table II work bounds, Eq. (1)/(2)
``repro.dist``      §VI distributed-memory BFS simulation (1D/2D)
``repro.exec``      executed parallel backend (sharded SpMM sweep) +
                    model calibration via ``repro.dist.calibrate``
``repro.serve``     adaptive micro-batching query server + workloads
``repro.obs``       span tracer, metrics registry, trace exporters
"""

from repro.apps import (
    Reachability,
    betweenness_centrality,
    components_via_bfs,
    pagerank,
    sssp_dijkstra,
    sssp_spmv,
)
from repro.bfs import (
    BFSResult,
    BFSSpMV,
    MultiSourceBFS,
    SlimSpMV,
    bfs_msbfs,
    bfs_direction_optimizing,
    bfs_hybrid,
    bfs_serial,
    bfs_spmspv,
    bfs_spmv,
    bfs_top_down,
    dp_transform,
)
from repro.formats import (
    AdjacencyList,
    CSRMatrix,
    Ellpack,
    SellCSigma,
    SlimSell,
    storage_report,
)
from repro.graphs import (
    Graph,
    erdos_renyi,
    erdos_renyi_nm,
    kronecker,
    realworld_proxy,
)
from repro.semirings import SEMIRINGS, get_semiring
from repro.vec import MACHINES, Machine, OpCounters, VectorUnit, get_machine

__version__ = "1.0.0"

#: Lazily-resolved exports of the distributed subsystem: ``repro.dist``
#: pulls in the BFS engines and the cost model, so importing ``repro`` for a
#: quick single-node run should not pay for it.  PEP 562 module __getattr__
#: resolves these names on first access and caches them in the module dict.
_LAZY_EXPORTS = {
    "bfs_dist_1d": ("repro.dist.bfs1d", "bfs_dist_1d"),
    "bfs_dist_2d": ("repro.dist.bfs2d", "bfs_dist_2d"),
    "Partition1D": ("repro.dist.partition", "Partition1D"),
    "Network": ("repro.dist.network", "Network"),
    "NETWORKS": ("repro.dist.network", "NETWORKS"),
    "CRAY_ARIES": ("repro.dist.network", "CRAY_ARIES"),
    "ETHERNET_10G": ("repro.dist.network", "ETHERNET_10G"),
    "model_allgather": ("repro.dist.network", "model_allgather"),
    "model_reduce_scatter": ("repro.dist.network", "model_reduce_scatter"),
    "model_transpose": ("repro.dist.network", "model_transpose"),
    "batched_frontier_bytes": ("repro.dist.network", "batched_frontier_bytes"),
    "get_network": ("repro.dist.network", "get_network"),
    "DistBFSResult": ("repro.dist.result", "DistBFSResult"),
    "DistBatchResult": ("repro.dist.result", "DistBatchResult"),
    "DistIterationStats": ("repro.dist.result", "DistIterationStats"),
    "CalibrationReport": ("repro.dist.calibrate", "CalibrationReport"),
    "calibrate": ("repro.dist.calibrate", "calibrate"),
    # repro.exec — the executed parallel backend; lazy because the process
    # backend's plumbing (multiprocessing, shared_memory) is dead weight
    # for single-node modeling runs.
    "ExecMultiSourceBFS": ("repro.exec.engine", "ExecMultiSourceBFS"),
    "ExecLayerStats": ("repro.exec.engine", "ExecLayerStats"),
    "bfs_exec": ("repro.exec.engine", "bfs_exec"),
    # repro.serve — the adaptive micro-batching query server; lazy for the
    # same reason as repro.dist (it pulls in both batched engines).
    "Server": ("repro.serve.server", "Server"),
    "AsyncServer": ("repro.serve.server", "AsyncServer"),
    "ServeStats": ("repro.serve.server", "ServeStats"),
    "QueryBatcher": ("repro.serve.batcher", "QueryBatcher"),
    "ResultCache": ("repro.serve.cache", "ResultCache"),
    "MissStatusRegistry": ("repro.serve.mshr", "MissStatusRegistry"),
    "graph_fingerprint": ("repro.serve.cache", "graph_fingerprint"),
    "Query": ("repro.serve.query", "Query"),
    "QueryResult": ("repro.serve.query", "QueryResult"),
    "Rejected": ("repro.serve.query", "Rejected"),
    "run_open_loop": ("repro.serve.workload", "run_open_loop"),
    "run_closed_loop": ("repro.serve.workload", "run_closed_loop"),
    "poisson_arrivals": ("repro.serve.workload", "poisson_arrivals"),
    "sample_zipf_roots": ("repro.serve.workload", "sample_zipf_roots"),
    # repro.serve.plan — the offline capacity planner (serve traffic priced
    # by the dist models); lazy because it pulls in both tiers at once.
    "DistServiceModel": ("repro.serve.plan", "DistServiceModel"),
    "plan_capacity": ("repro.serve.plan", "plan_capacity"),
    "compare_placement": ("repro.serve.plan", "compare_placement"),
    "machine_weights": ("repro.dist.partition", "machine_weights"),
    "get_machines": ("repro.vec.machine", "get_machines"),
    # repro.obs — observability: span tracer, metrics registry, exporters.
    # Lazy so the instrumentation layer costs nothing until first use.
    "Tracer": ("repro.obs.trace", "Tracer"),
    "Span": ("repro.obs.trace", "Span"),
    "MetricsRegistry": ("repro.obs.metrics", "MetricsRegistry"),
    "percentile": ("repro.obs.metrics", "percentile"),
    "write_chrome_trace": ("repro.obs.export", "write_chrome_trace"),
    "write_jsonl": ("repro.obs.export", "write_jsonl"),
    "load_trace": ("repro.obs.export", "load_trace"),
}


def __getattr__(name: str):
    try:
        module, attr = _LAZY_EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "Graph",
    "kronecker",
    "erdos_renyi",
    "erdos_renyi_nm",
    "realworld_proxy",
    "SellCSigma",
    "SlimSell",
    "CSRMatrix",
    "AdjacencyList",
    "Ellpack",
    "storage_report",
    "BFSSpMV",
    "MultiSourceBFS",
    "bfs_spmv",
    "bfs_msbfs",
    "bfs_spmspv",
    "SlimSpMV",
    "bfs_top_down",
    "bfs_serial",
    "bfs_direction_optimizing",
    "dp_transform",
    "BFSResult",
    "betweenness_centrality",
    "pagerank",
    "components_via_bfs",
    "Reachability",
    "sssp_spmv",
    "sssp_dijkstra",
    "bfs_hybrid",
    "SEMIRINGS",
    "get_semiring",
    "VectorUnit",
    "OpCounters",
    "Machine",
    "MACHINES",
    "get_machine",
    "bfs_dist_1d",
    "bfs_dist_2d",
    "Partition1D",
    "Network",
    "NETWORKS",
    "CRAY_ARIES",
    "ETHERNET_10G",
    "model_allgather",
    "model_reduce_scatter",
    "model_transpose",
    "batched_frontier_bytes",
    "get_network",
    "DistBFSResult",
    "DistBatchResult",
    "DistIterationStats",
    "CalibrationReport",
    "calibrate",
    "ExecMultiSourceBFS",
    "ExecLayerStats",
    "bfs_exec",
    "Server",
    "AsyncServer",
    "ServeStats",
    "QueryBatcher",
    "ResultCache",
    "MissStatusRegistry",
    "graph_fingerprint",
    "Query",
    "QueryResult",
    "Rejected",
    "run_open_loop",
    "run_closed_loop",
    "poisson_arrivals",
    "sample_zipf_roots",
    "DistServiceModel",
    "plan_capacity",
    "compare_placement",
    "machine_weights",
    "get_machines",
    "Tracer",
    "Span",
    "MetricsRegistry",
    "percentile",
    "write_chrome_trace",
    "write_jsonl",
    "load_trace",
    "__version__",
]
