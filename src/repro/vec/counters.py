"""Instruction and memory-traffic counters for the simulated vector unit.

The paper's performance argument is about *counted* quantities: how many
vector instructions a BFS iteration issues and how many words it moves
through the memory subsystem.  ``OpCounters`` accumulates both so the cost
model (:mod:`repro.perf.costmodel`) can turn them into modeled times on any
:class:`~repro.vec.machine.Machine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class OpCounters:
    """Mutable accumulator of vector-unit activity.

    Attributes
    ----------
    instructions:
        Per-mnemonic count of issued vector instructions (each processes one
        C-lane vector regardless of C).
    words_loaded / words_stored:
        Memory traffic in 32-bit words.  Contiguous and gathered accesses are
        tracked separately because gathers hit the memory subsystem harder.
    gather_words:
        Words moved by indexed (gather) loads; subset of ``words_loaded``.
    lanes:
        Total lanes processed (= instructions × C); useful to express SIMD
        efficiency.
    """

    instructions: dict[str, int] = field(default_factory=dict)
    words_loaded: int = 0
    words_stored: int = 0
    gather_words: int = 0
    lanes: int = 0

    def count(self, mnemonic: str, n: int = 1, lanes: int = 0) -> None:
        """Record ``n`` issues of ``mnemonic`` touching ``lanes`` lanes."""
        self.instructions[mnemonic] = self.instructions.get(mnemonic, 0) + n
        self.lanes += lanes

    def load(self, words: int, gather: bool = False) -> None:
        """Record a load of ``words`` 32-bit words."""
        self.words_loaded += words
        if gather:
            self.gather_words += words

    def store(self, words: int) -> None:
        """Record a store of ``words`` 32-bit words."""
        self.words_stored += words

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        """Total vector instructions issued."""
        return sum(self.instructions.values())

    @property
    def total_words(self) -> int:
        """Total memory words moved (loads + stores)."""
        return self.words_loaded + self.words_stored

    @property
    def total_bytes(self) -> int:
        """Total memory traffic in bytes (cells are 32-bit words)."""
        return 4 * self.total_words

    def copy(self) -> "OpCounters":
        """Deep copy (the instruction dict is duplicated)."""
        c = OpCounters(
            instructions=dict(self.instructions),
            words_loaded=self.words_loaded,
            words_stored=self.words_stored,
            gather_words=self.gather_words,
            lanes=self.lanes,
        )
        return c

    def reset(self) -> None:
        """Zero every counter in place."""
        self.instructions.clear()
        self.words_loaded = 0
        self.words_stored = 0
        self.gather_words = 0
        self.lanes = 0

    def __iadd__(self, other: "OpCounters") -> "OpCounters":
        for k, v in other.instructions.items():
            self.instructions[k] = self.instructions.get(k, 0) + v
        self.words_loaded += other.words_loaded
        self.words_stored += other.words_stored
        self.gather_words += other.gather_words
        self.lanes += other.lanes
        return self

    def __add__(self, other: "OpCounters") -> "OpCounters":
        out = self.copy()
        out += other
        return out

    def diff(self, before: "OpCounters") -> "OpCounters":
        """Counters accumulated since the snapshot ``before``."""
        d = OpCounters()
        for k, v in self.instructions.items():
            delta = v - before.instructions.get(k, 0)
            if delta:
                d.instructions[k] = delta
        d.words_loaded = self.words_loaded - before.words_loaded
        d.words_stored = self.words_stored - before.words_stored
        d.gather_words = self.gather_words - before.gather_words
        d.lanes = self.lanes - before.lanes
        return d
