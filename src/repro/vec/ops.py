"""The simulated vector unit: Listing 1/2 of the paper, on NumPy.

A :class:`VectorUnit` executes C-lane vector operations with exactly the
semantics of the paper's Listing 1 (``LOAD``, ``STORE``, ``SET1``, ``CMP``,
``BLEND``, ``MIN``, ``MAX``, ``ADD``, ``MUL``, ``AND``, ``OR``, ``NOT``) plus
the indexed ``GATHER`` used to form the ``rhs`` vector in Listings 5/6.

Each method operates on length-C NumPy arrays ("registers") and records one
vector instruction in the attached :class:`~repro.vec.counters.OpCounters`.
The kernels in :mod:`repro.bfs.spmv` are direct transliterations of the
paper's listings on top of this unit, so lane width C is the only knob that
distinguishes a Haswell CPU (C=8) from a KNL (C=16) or a GPU warp (C=32).

Counting can be disabled (``counting=False``) for pure-speed runs; semantics
are unchanged.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.vec.counters import OpCounters

CmpOp = Literal["EQ", "NEQ", "LT", "LE", "GT", "GE"]

_CMP_FUNCS = {
    "EQ": np.equal,
    "NEQ": np.not_equal,
    "LT": np.less,
    "LE": np.less_equal,
    "GT": np.greater,
    "GE": np.greater_equal,
}


class VectorUnit:
    """A C-lane SIMD execution unit with instruction/traffic accounting.

    Parameters
    ----------
    C:
        Number of lanes (the paper's chunk height / SIMD width).
    counters:
        Accumulator for issued instructions and memory words; a fresh one is
        created when omitted.
    counting:
        When ``False`` all bookkeeping is skipped (hot-path mode).
    """

    def __init__(self, C: int, counters: OpCounters | None = None, counting: bool = True):
        if C < 1:
            raise ValueError(f"SIMD width C must be >= 1, got {C}")
        self.C = int(C)
        self.counters = counters if counters is not None else OpCounters()
        self.counting = bool(counting)

    # ------------------------------------------------------------------
    # Memory instructions
    # ------------------------------------------------------------------
    def load(self, mem: np.ndarray, addr: int) -> np.ndarray:
        """Contiguous load of C elements starting at ``addr`` (Listing 1 LOAD)."""
        out = mem[addr : addr + self.C]
        if self.counting:
            self.counters.count("LOAD", lanes=self.C)
            self.counters.load(self.C)
        return out

    def store(self, mem: np.ndarray, addr: int, data: np.ndarray) -> None:
        """Contiguous store of C elements at ``addr`` (Listing 1 STORE)."""
        mem[addr : addr + self.C] = data
        if self.counting:
            self.counters.count("STORE", lanes=self.C)
            self.counters.store(self.C)

    def gather(self, mem: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """Indexed load ``[mem[idx[0]], ..., mem[idx[C-1]]]``.

        This is the ``rhs`` construction of Listings 5/6 (a ``set`` of C
        scalar loads on AVX, a real gather on AVX-512/GPU).  Counted as one
        vector instruction but C words of *gathered* traffic.
        """
        out = mem[idx]
        if self.counting:
            self.counters.count("GATHER", lanes=self.C)
            self.counters.load(self.C, gather=True)
        return out

    # ------------------------------------------------------------------
    # Register creation
    # ------------------------------------------------------------------
    def set1(self, value, dtype=np.float64) -> np.ndarray:
        """Broadcast one scalar into all C lanes (``_mm256_set1_*``)."""
        out = np.full(self.C, value, dtype=dtype)
        if self.counting:
            self.counters.count("SET1", lanes=self.C)
        return out

    def set(self, values) -> np.ndarray:
        """Build a register from C individual elements (``_mm256_set_*``)."""
        out = np.asarray(values)
        if out.shape != (self.C,):
            raise ValueError(f"set() needs exactly C={self.C} elements, got shape {out.shape}")
        if self.counting:
            self.counters.count("SET", lanes=self.C)
        return out

    # ------------------------------------------------------------------
    # Compute instructions
    # ------------------------------------------------------------------
    def _bin(self, name: str, fn, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        out = fn(a, b)
        if self.counting:
            self.counters.count(name, lanes=self.C)
        return out

    def cmp(self, a: np.ndarray, b: np.ndarray, op: CmpOp) -> np.ndarray:
        """Elementwise compare; returns a 0/1 mask vector (Listing 1 CMP)."""
        mask = _CMP_FUNCS[op](a, b)
        if self.counting:
            self.counters.count("CMP", lanes=self.C)
        return mask

    def blend(self, a: np.ndarray, b: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """``out[i] = b[i] if mask[i] else a[i]`` (Listing 1 BLEND)."""
        out = np.where(mask.astype(bool), b, a)
        if self.counting:
            self.counters.count("BLEND", lanes=self.C)
        return out

    def min(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise minimum."""
        return self._bin("MIN", np.minimum, a, b)

    def max(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise maximum."""
        return self._bin("MAX", np.maximum, a, b)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise addition."""
        return self._bin("ADD", np.add, a, b)

    def mul(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise multiplication."""
        return self._bin("MUL", np.multiply, a, b)

    def logical_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise logical AND on 0/1 vectors."""
        out = np.logical_and(a, b)
        if self.counting:
            self.counters.count("AND", lanes=self.C)
        return out

    def logical_or(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise logical OR on 0/1 vectors."""
        out = np.logical_or(a, b)
        if self.counting:
            self.counters.count("OR", lanes=self.C)
        return out

    def logical_not(self, a: np.ndarray) -> np.ndarray:
        """Elementwise logical negation (the paper's overbar operator)."""
        out = np.logical_not(np.asarray(a, dtype=bool))
        if self.counting:
            self.counters.count("NOT", lanes=self.C)
        return out

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def snapshot(self) -> OpCounters:
        """Copy of the current counters (for before/after diffs)."""
        return self.counters.copy()
