"""Simulated C-lane vector ISA (the paper's Listing 1/2 semantics).

This package is the hardware substitute for the AVX / AVX-512 / CUDA-warp
vector units the paper runs on.  A :class:`~repro.vec.ops.VectorUnit` executes
Listing-1 operations (``LOAD``, ``STORE``, ``CMP``, ``BLEND``, ``MIN``,
``MAX``, ``ADD``, ``MUL``, ``AND``, ``OR``, ``NOT``, ``GATHER``) on C-element
NumPy slices while a :class:`~repro.vec.counters.OpCounters` records every
instruction and every word of memory traffic.  Machine descriptors for the
paper's seven evaluation systems live in :mod:`repro.vec.machine`.
"""

from repro.vec.counters import OpCounters
from repro.vec.machine import (
    DORA_CPU,
    GREINA_XEON,
    GTX670,
    KNL,
    MACHINES,
    TESLA_K20X,
    TESLA_K80,
    TRIVIUM_HASWELL,
    Machine,
    get_machine,
)
from repro.vec.ops import VectorUnit

__all__ = [
    "OpCounters",
    "VectorUnit",
    "Machine",
    "MACHINES",
    "get_machine",
    "DORA_CPU",
    "KNL",
    "TESLA_K80",
    "TESLA_K20X",
    "TRIVIUM_HASWELL",
    "GTX670",
    "GREINA_XEON",
]
