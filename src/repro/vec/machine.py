"""Machine descriptors for the paper's seven evaluation systems (§IV).

Each :class:`Machine` captures the architectural parameters the cost model
needs: SIMD lane count C (with 32-bit vertex ids, as the paper fixes in
§IV-A), number of hardware compute units, clock, sustained memory bandwidth,
and a latency-vs-throughput orientation factor used when modeling the
traditional fine-grained BFS.

The numbers are public spec-sheet values; the reproduction targets *shape*
(who wins, by what rough factor, where crossovers fall), not absolute
seconds, so modest inaccuracies here do not change any conclusion.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Machine:
    """An evaluation system, as the cost model sees it.

    Attributes
    ----------
    name:
        Identifier used by benchmarks (e.g. ``"dora"``).
    kind:
        ``"cpu"``, ``"manycore"``, or ``"gpu"``.
    simd_width:
        Lanes per vector unit for 32-bit elements — the paper's C.
    units:
        Parallel compute units (cores, or GPU warps resident ≈ SMs×warps/SM
        simplified to SM count; only relative magnitudes matter).
    ghz:
        Clock of one unit in GHz.
    bandwidth_gbs:
        Sustained memory bandwidth in GB/s (STREAM-like).
    gather_penalty:
        Multiplier applied to *vector-gather* traffic relative to streaming.
        SpMV gathers read the hot frontier vector (n·4B, heavily reused, so
        largely cache-resident); the penalty is modest.
    random_penalty:
        Multiplier applied to *fine-grained scalar* random accesses
        (traditional BFS's visited checks and frontier scatter).  These
        fetch a full cache line (64B) or memory sector per useful 4-byte
        word, so the effective penalty is large: ≈16 worst case, ≈8 with
        partial line reuse on CPUs; worse on GPUs, where uncoalesced
        single-word accesses serialize the warp's memory transactions.
    scalar_penalty:
        Relative cost of a scalar (1-lane) op vs a full vector op; models
        why fine-grained traditional BFS underutilizes wide units.
    """

    name: str
    kind: str
    simd_width: int
    units: int
    ghz: float
    bandwidth_gbs: float
    gather_penalty: float = 2.0
    random_penalty: float = 8.0
    scalar_penalty: float = 1.0

    def scaled(self, factor: float) -> "Machine":
        """A derated (or uprated) copy: clock and bandwidth × ``factor``.

        The descriptor-level way to express big.LITTLE mixes and chronic
        stragglers for the heterogeneous-placement path: ``knl.scaled(0.5)``
        is a node of the same architecture at half the compute *and* memory
        throughput, so the cost model slows every term coherently.  The name
        gains an ``@factor`` suffix (``"knl@0.5"``) for report labels.
        """
        factor = float(factor)
        if not factor > 0:
            raise ValueError(f"scale factor must be > 0, got {factor}")
        if factor == 1.0:
            return self
        from dataclasses import replace

        return replace(self, name=f"{self.name}@{factor:g}",
                       ghz=self.ghz * factor,
                       bandwidth_gbs=self.bandwidth_gbs * factor)

    @property
    def vector_throughput(self) -> float:
        """Vector instructions retired per second across the machine."""
        return self.units * self.ghz * 1e9

    @property
    def lane_throughput(self) -> float:
        """Scalar-equivalent lane operations per second."""
        return self.vector_throughput * self.simd_width

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.name} ({self.kind}, C={self.simd_width}, "
            f"{self.units}x{self.ghz}GHz, {self.bandwidth_gbs}GB/s)"
        )


# --------------------------------------------------------------------------
# The seven systems of §IV "Experimental Setup and Architectures"
# --------------------------------------------------------------------------

#: CSCS Piz Dora node: 2x Xeon E5-2695 v4 @2.1GHz, 18 cores each, AVX2 (C=8).
DORA_CPU = Machine("dora", "cpu", simd_width=8, units=36, ghz=2.1,
                   bandwidth_gbs=130.0, gather_penalty=1.6, random_penalty=8.0,
                   scalar_penalty=1.0)

#: Intel Xeon Phi KNL 7210: 64 cores @1.3GHz, AVX-512 (C=16), MCDRAM.
KNL = Machine("knl", "manycore", simd_width=16, units=64, ghz=1.3,
              bandwidth_gbs=400.0, gather_penalty=2.2, random_penalty=8.0,
              scalar_penalty=2.0)

#: NVIDIA Tesla K80 (one GK210): warp of 32 (C=32), 13 SMX.
TESLA_K80 = Machine("tesla-k80", "gpu", simd_width=32, units=13, ghz=0.56,
                    bandwidth_gbs=240.0, gather_penalty=3.0, random_penalty=16.0,
                    scalar_penalty=8.0)

#: NVIDIA Tesla K20X (Piz Daint): warp of 32, 14 SMX.
TESLA_K20X = Machine("tesla-k20x", "gpu", simd_width=32, units=14, ghz=0.73,
                     bandwidth_gbs=250.0, gather_penalty=3.0, random_penalty=16.0,
                     scalar_penalty=8.0)

#: Commodity Haswell CPU (Trivium server), AVX2 (C=8), 4 cores.
TRIVIUM_HASWELL = Machine("trivium-haswell", "cpu", simd_width=8, units=4, ghz=3.4,
                          bandwidth_gbs=25.6, gather_penalty=1.6,
                          random_penalty=8.0, scalar_penalty=1.0)

#: Commodity NVIDIA GTX 670, warp of 32, 7 SMX.
GTX670 = Machine("gtx670", "gpu", simd_width=32, units=7, ghz=0.92,
                 bandwidth_gbs=192.0, gather_penalty=3.0, random_penalty=16.0,
                 scalar_penalty=8.0)

#: Low-latency Xeon E5-1620 @3.5GHz (Greina), 4 cores, AVX (C=8).
GREINA_XEON = Machine("greina-xeon", "cpu", simd_width=8, units=4, ghz=3.5,
                      bandwidth_gbs=51.2, gather_penalty=1.5, random_penalty=8.0,
                      scalar_penalty=1.0)

MACHINES: dict[str, Machine] = {
    m.name: m
    for m in (
        DORA_CPU,
        KNL,
        TESLA_K80,
        TESLA_K20X,
        TRIVIUM_HASWELL,
        GTX670,
        GREINA_XEON,
    )
}


def get_machine(name: str) -> Machine:
    """Look up one of the seven evaluation systems by name.

    A ``name@factor`` suffix derates the descriptor via
    :meth:`Machine.scaled` (``"knl@0.5"`` = a KNL at half throughput), so
    heterogeneous cluster specs stay plain strings end to end.
    """
    base, _, factor = name.partition("@")
    try:
        machine = MACHINES[base]
    except KeyError:
        raise KeyError(
            f"unknown machine {base!r}; available: {sorted(MACHINES)}"
        ) from None
    if not factor:
        return machine
    try:
        return machine.scaled(float(factor))
    except ValueError as exc:
        raise KeyError(f"bad machine spec {name!r}: {exc}") from None


def get_machines(spec: str | list[str]) -> list[Machine]:
    """Parse a per-rank machine list: ``"knl,knl,knl@0.5"`` or
    ``"knl*3,dora"`` (a ``*count`` suffix repeats an entry).  The result
    feeds heterogeneous placement — one descriptor per rank."""
    parts = spec.split(",") if isinstance(spec, str) else list(spec)
    machines: list[Machine] = []
    for part in parts:
        name, _, count = part.strip().partition("*")
        n = 1
        if count:
            if not count.isdigit() or int(count) < 1:
                raise KeyError(
                    f"bad machine spec {part!r}: *count must be a "
                    f"positive integer")
            n = int(count)
        machines.extend([get_machine(name)] * n)
    if not machines:
        raise KeyError("empty machine list")
    return machines
