"""Shared helpers for the benchmark suite.

Every bench regenerates one table or figure of the paper: it computes the
same rows/series the paper reports, prints them (visible with ``pytest -s``
or in the saved artifacts), and persists them as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can cite exact numbers.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

RESULTS_DIR = Path(__file__).parent / "results"


def save_results(name: str, payload: dict) -> Path:
    """Persist a bench's series as JSON under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, default=_jsonify))
    return path


def write_bench_json(path, payload: dict) -> None:
    """Write a standalone-bench payload, keeping any gate baseline intact.

    The committed ``BENCH_*.json`` files carry a ``quick_baseline`` section
    stamped by ``check_regression.py --update-baselines``; re-running a
    bench with ``--output`` pointed at the committed file (the documented
    refresh flow) must not silently delete it, or the CI bench-gate job
    starts failing with "no quick_baseline section".
    """
    path = Path(path)
    if path.exists() and "quick_baseline" not in payload:
        try:
            old = json.loads(path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError):
            old = {}
        if "quick_baseline" in old:
            payload = {**payload, "quick_baseline": old["quick_baseline"]}
    # Strict JSON: refuse NaN/Infinity instead of emitting the Python-only
    # literals no other tooling can parse (benches must stringify them).
    path.write_text(json.dumps(payload, indent=2, allow_nan=False) + "\n")


def _jsonify(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"not JSON-serializable: {type(obj)}")


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print an aligned ASCII table (the paper-row format)."""
    cells = [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for r in cells:
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)))


def _fmt(c) -> str:
    if isinstance(c, float):
        if c == 0:
            return "0"
        if abs(c) >= 1000 or abs(c) < 1e-3:
            return f"{c:.3e}"
        return f"{c:.4g}"
    return str(c)


def geomean(xs) -> float:
    """Geometric mean of positive values."""
    xs = np.asarray(list(xs), dtype=float)
    return float(np.exp(np.mean(np.log(xs)))) if xs.size else float("nan")


def modeled_spmv_run(machine, rep, semiring, root, *, sched="static",
                     slimwork=False, slimchunk=None, include_dp=True,
                     engine="layer"):
    """Run a counted BFS-SpMV and model it on ``machine``.

    Returns ``(result, per_iteration_ModeledTime, total_seconds)``.  The
    load-balance factor comes from simulating the requested OpenMP schedule
    over the representation's work units (SlimChunk-aware); the DP
    transformation cost is added for semirings that need it (§IV-A2) unless
    ``include_dp=False`` (the paper's "No-DP" configurations).
    """
    from repro.bfs.slimchunk import make_work_units, unit_costs
    from repro.bfs.spmv import BFSSpMV
    from repro.perf.costmodel import (
        model_bfs_result,
        model_scalar_iteration,
    )
    from repro.sched.scheduling import (
        imbalance,
        schedule_dynamic,
        schedule_static,
    )

    runner = BFSSpMV(rep, semiring, counting=True, slimwork=slimwork,
                     slimchunk=slimchunk, engine=engine,
                     compute_parents=False)
    res = runner.run(root)
    units = make_work_units(rep.cl, slimchunk)
    costs = unit_costs(units, rep.C)
    if sched == "static":
        schedule = schedule_static(costs, machine.units)
    else:
        schedule = schedule_dynamic(costs, machine.units)
    bal = imbalance(schedule)
    times = model_bfs_result(machine, res, balance=bal)
    total = sum(t.t_total for t in times)
    if include_dp and runner.semiring.needs_dp:
        dp = model_scalar_iteration(machine, edges_examined=2 * rep.m,
                                    vertices_touched=rep.n)
        total += dp.t_total
    return res, times, total
