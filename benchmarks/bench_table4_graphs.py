"""Table IV — the real-world corpus: published stats vs synthetic proxies.

Generates each Table IV proxy (downscaled) and reports n, m, ρ̄ = m/n and
the pseudo-diameter next to the published values; asserts the density and
diameter regimes match (the structural properties SlimSell's results hinge
on).
"""

from __future__ import annotations

from repro.graphs.realworld import REALWORLD_REGISTRY, realworld_proxy
from repro.graphs.utils import pseudo_diameter
from _common import print_table, save_results

DOWNSCALE = 128


def test_table4_proxies(benchmark):
    rows = []
    payload = {}
    build = benchmark.pedantic(
        lambda: {gid: realworld_proxy(gid, downscale=DOWNSCALE, seed=0)
                 for gid in sorted(REALWORLD_REGISTRY)},
        rounds=1, iterations=1)
    for gid in sorted(REALWORLD_REGISTRY):
        spec = REALWORLD_REGISTRY[gid]
        g = build[gid]
        d = pseudo_diameter(g, sweeps=3)
        rho = g.m / g.n
        rows.append([gid, spec.kind, spec.n, g.n, f"{spec.rho:.2f}",
                     f"{rho:.2f}", spec.diameter, d])
        payload[gid] = {"published": {"n": spec.n, "m": spec.m,
                                      "rho": spec.rho, "D": spec.diameter},
                        "proxy": {"n": g.n, "m": g.m, "rho": rho, "D": d}}
        # Density within a factor ~2 of published.
        assert 0.4 * spec.rho <= rho <= 2.0 * spec.rho, gid
        # Diameter regime: high-D graphs stay high-D, low-D stay low-D
        # (downscaling shrinks diameters; compare the split, not the value).
        if spec.diameter >= 100:
            assert d >= 25, f"{gid}: high-diameter regime lost"
        if spec.diameter <= 35 and spec.kind in ("social", "community"):
            assert d <= 30, f"{gid}: low-diameter regime lost"
    print_table(
        f"Table IV (proxies at downscale={DOWNSCALE})",
        ["id", "kind", "n (paper)", "n (proxy)", "ρ̄ (paper)", "ρ̄ (proxy)",
         "D (paper)", "D (proxy)"],
        rows)
    save_results("table4_graphs", payload)
