"""Table V — speedup of SlimSell over Sell-C-σ per semiring and σ.

Paper values (Kronecker n=2^24, ρ=16, CPU): ≈1.17–1.21 at σ=2^4, ≈1.00–1.04
at σ=2^18.  The mechanism is memory traffic: SlimSell removes the val loads.
Our roofline model keeps BFS memory-bound on the CPU at every σ, so the
modeled advantage persists at large σ (≈1.3) rather than decaying to 1.0 —
the measured-vs-paper delta is recorded in EXPERIMENTS.md.  The shape that
must hold: SlimSell ≥ 1 everywhere, and its advantage is at least as large
at small σ as at large σ.
"""

from __future__ import annotations

import numpy as np

from repro.formats.sell import SellCSigma
from repro.formats.slimsell import SlimSell
from repro.semirings import SEMIRINGS
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 8


def test_table5_slimsell_speedup(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    sigmas = {"2^4": 16, "sigma=n": g.n}

    def compute():
        table = {}
        for label, sigma in sigmas.items():
            sell = SellCSigma(g, C, sigma)
            slim = SlimSell.from_sell(sell)
            table[label] = {}
            for name in SEMIRINGS:
                _, _, t_sell = modeled_spmv_run(dora, sell, name, root,
                                                include_dp=False)
                _, _, t_slim = modeled_spmv_run(dora, slim, name, root,
                                                include_dp=False)
                table[label][name] = t_sell / t_slim
        return table

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[label] + [f"{table[label][name]:.3f}" for name in SEMIRINGS]
            for label in sigmas]
    print_table("Table V (scaled): SlimSell speedup over Sell-C-σ",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("table5_slimsell", table)

    for name in SEMIRINGS:
        # Small σ: the memory-bound regime — SlimSell wins clearly
        # (paper: 1.17–1.21; our roofline gives ~1.37).
        assert table["2^4"][name] >= 1.10, name
        # Full sort: padding vanishes and the static-schedule imbalance makes
        # the run compute-bound, where SlimSell's extra CMP+BLEND bite — the
        # advantage collapses toward (slightly past) 1.0, the paper's
        # 1.00–1.04 regime.
        assert 0.75 <= table["sigma=n"][name] <= 1.20, name
        # The σ-trend: a larger advantage at small σ than at large σ.
        assert table["2^4"][name] > table["sigma=n"][name], name
