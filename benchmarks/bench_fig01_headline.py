"""Figure 1 — headline: per-iteration time, traditional vs algebraic BFS.

Paper setup: Kronecker graph with 2^20 vertices, 512 edges per vertex, on a
KNL; curves for traditional queue-based BFS, algebraic BFS with SlimSell
(with and without direction optimization / work reduction).

Scaled setup: Kronecker 2^11 vertices, ρ̄ ≈ 128; modeled times on the KNL
descriptor from counted work.  Shape targets: the traditional curve peaks in
the middle iterations (frontier bulge); algebraic BFS without SlimWork is
flat across iterations; SlimWork makes late iterations cheap and beats the
flat curve overall.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.spmv import BFSSpMV
from repro.bfs.traditional import bfs_top_down
from repro.bfs.direction_opt import bfs_direction_optimizing
from repro.formats.slimsell import SlimSell
from repro.perf.costmodel import model_bfs_result, model_traditional_result
from repro.vec.machine import get_machine

from _common import print_table, save_results

#: Deterministic smoke configuration for the regression gate
#: (``benchmarks/check_regression.py``): the modeled curves are pure
#: functions of (graph, representation, cost model) — counted work times
#: analytic per-op costs, no wall clock — so the committed baseline is an
#: exact change detector for the single-source SpMV engine + KNL model.
QUICK = {"scale": 9, "edgefactor": 32, "seed": 2023}


def run_quick(scale: int | None = None, edgefactor: float | None = None,
              seed: int | None = None) -> dict:
    """Modeled Fig-1 curves at a deterministic smoke scale.

    Returns the per-iteration modeled KNL times of the plain and SlimWork
    SpMV traversals plus their totals — the quantities the bench-gate
    pins.  Unlike the pytest bench above, nothing here is timed: a changed
    number means changed counted work or a changed cost model, never a
    noisy host.
    """
    from repro.graphs.kronecker import kronecker

    scale = QUICK["scale"] if scale is None else scale
    edgefactor = QUICK["edgefactor"] if edgefactor is None else edgefactor
    seed = QUICK["seed"] if seed is None else seed
    g = kronecker(scale, edgefactor, seed=seed)
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, C=16, sigma=g.n)
    knl = get_machine("knl")
    plain = BFSSpMV(rep, "tropical", counting=True).run(root)
    slim = BFSSpMV(rep, "tropical", counting=True, slimwork=True).run(root)
    t_plain = _series(model_bfs_result(knl, plain))
    t_slim = _series(model_bfs_result(knl, slim))
    return {
        "workload": {"scale": scale, "edgefactor": edgefactor, "seed": seed,
                     "n": g.n, "m": g.m, "root": root, "C": 16,
                     "machine": "knl", "semiring": "tropical"},
        "series": {"spmv_slimsell": t_plain, "spmv_slimwork": t_slim},
        "modeled_total_s": {"spmv_slimsell": float(sum(t_plain)),
                            "spmv_slimwork": float(sum(t_slim))},
    }


def _series(times):
    return [t.t_total for t in times]


def test_fig1_per_iteration_curves(kron_dense, benchmark):
    g = kron_dense
    root = int(np.argmax(g.degrees))
    knl = get_machine("knl")
    rep = SlimSell(g, C=16, sigma=g.n)

    trad = bfs_top_down(g, root)
    diropt = bfs_direction_optimizing(g, root)
    plain = BFSSpMV(rep, "tropical", counting=True).run(root)
    slim = BFSSpMV(rep, "tropical", counting=True, slimwork=True).run(root)
    # The paper's "Algebraic BFS with SlimSell (direction opt.)" curve:
    # push (SpMSpV) early, pull (SlimWork SpMV) on the bulge.
    hybrid = bfs_hybrid(rep, root)

    t_trad = _series(model_traditional_result(knl, trad))
    t_diropt = _series(model_traditional_result(knl, diropt))
    t_plain = _series(model_bfs_result(knl, plain))
    t_slim = _series(model_bfs_result(knl, slim))
    hybrid_dirs = [it.direction for it in hybrid.iterations]

    # Wall-clock benchmark of the SlimSell+SlimWork traversal itself.
    runner = BFSSpMV(rep, "tropical", slimwork=True)
    benchmark.pedantic(lambda: runner.run(root), rounds=3, iterations=1)

    kmax = max(len(t_trad), len(t_diropt), len(t_plain), len(t_slim))
    rows = []
    for k in range(kmax):
        def pick(s):
            return s[k] if k < len(s) else ""
        rows.append([k + 1, pick(t_trad), pick(t_diropt), pick(t_plain),
                     pick(t_slim)])
    print_table(
        "Fig 1 (scaled): modeled per-iteration time on KNL [s]",
        ["iter", "trad-BFS", "direction-opt", "SpMV SlimSell", "SpMV+SlimWork"],
        rows)
    save_results("fig01_headline", {
        "graph": {"n": g.n, "m": g.m, "rho": g.avg_degree},
        "machine": "knl",
        "trad": t_trad, "diropt": t_diropt,
        "spmv_slimsell": t_plain, "spmv_slimwork": t_slim,
        "hybrid_directions": hybrid_dirs,
    })
    # The algebraic direction-opt curve starts sparse (push) and pulls on
    # the bulge — and its results stay exact.
    assert hybrid_dirs[0] == "push" and "pull" in hybrid_dirs
    np.testing.assert_array_equal(hybrid.dist, trad.dist)

    # Shape assertions (the paper's qualitative claims).
    mid = int(np.argmax(t_trad))
    assert 0 < mid < len(t_trad) - 1, "traditional curve must peak mid-run"
    # Without SlimWork every iteration costs the same work.
    assert np.std(t_plain[:-1]) / np.mean(t_plain[:-1]) < 0.05
    # SlimWork's tail iterations are much cheaper than its peak.
    assert t_slim[-1] < 0.5 * max(t_slim)
    # Overall, SlimWork beats the flat algebraic curve.
    assert sum(t_slim) < sum(t_plain)
