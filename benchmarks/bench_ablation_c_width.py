"""Ablation — the chunk height C: padding cost vs SIMD width.

DESIGN.md calls out C as the central design parameter: it must equal the
target's SIMD width (8/16/32), but the complexity analysis (Fig 3, Table
III) prices every increase — padded storage grows like ρ̂·C and with it the
per-sweep work.  This bench sweeps C and verifies the bound and the
lane-efficiency trade-off the paper's architecture choice balances.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.complexity import sell_storage_upper_bound
from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from _common import print_table, save_results

WIDTHS = [1, 4, 8, 16, 32, 64]


def test_c_width_tradeoff(benchmark):
    g = kronecker(12, 8, seed=31)
    root = int(np.argmax(g.degrees))

    def sweep():
        out = {}
        for C in WIDTHS:
            rep = SlimSell(g, C, g.n)
            res = BFSSpMV(rep, "tropical", slimwork=True, counting=True,
                          compute_parents=False).run(root)
            tot = res.total_counters()
            out[C] = {
                "padding": rep.padding_slots,
                "cells": rep.storage_cells(),
                "instructions": tot.total_instructions,
                "lanes": tot.lanes,
            }
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[C, v["padding"], v["cells"], v["instructions"], v["lanes"]]
            for C, v in out.items()]
    print_table("Ablation: chunk height C (SlimSell, σ=n, Kronecker 2^12)",
                ["C", "padding slots", "cells", "vector instr", "lanes"], rows)
    save_results("ablation_c_width", out)

    pads = [out[C]["padding"] for C in WIDTHS]
    # Padding grows monotonically with C (coarser chunks, more waste) …
    assert all(b >= a for a, b in zip(pads, pads[1:]))
    # … but stays within the paper's bound P_slots <= rho_max * C.
    for C in WIDTHS:
        assert out[C]["padding"] + 2 * g.m <= sell_storage_upper_bound(
            2 * g.m, g.max_degree, C)
    # Wider C retires far fewer vector instructions (the SIMD win):
    assert out[32]["instructions"] < out[1]["instructions"] / 8
    # C=1 degenerates to scalar processing: zero padding.
    assert out[1]["padding"] == 0
