#!/usr/bin/env python
"""B-sweep ablation of the batched multi-source BFS engine.

Runs the Graph500-style workload (Kronecker graph, sampled valid roots,
default engine: SlimSell C=16, sel-max, SlimWork) once per batch width
B ∈ {1, 4, 16, 64}, over the *same* prebuilt representation, and reports
total kernel wall clock, speedup over the sequential B=1 sweep, and
harmonic-mean TEPS.  Every batched run is checked bit-identical (distances
and parents) to the sequential baseline before its timing is trusted.

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_msbfs.json`` in the current
directory) that CI uploads as the perf-trajectory artifact.

Usage::

    python benchmarks/bench_msbfs_batch.py              # scale 14, 64 roots
    python benchmarks/bench_msbfs_batch.py --quick      # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import write_bench_json

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.
QUICK = {"scale": 10, "edgefactor": 16, "nroots": 16, "batches": [1, 4, 16]}


def run_sweep(scale: int, edgefactor: float, nroots: int,
              batches: list[int], seed: int = 1) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    rep = SlimSell(graph, 16, graph.n)
    build_s = time.perf_counter() - t0

    roots = sample_roots(graph, nroots, seed)

    # Warm the memoized operands (col64, per-semiring val) so every batch
    # width measures steady-state kernel time, not one-time materialization.
    BFSSpMV(rep, "sel-max", slimwork=True).run(int(roots[0]))

    baseline = None
    rows = []
    for B in sorted(set(batches)):
        engine = BFSSpMV(rep, "sel-max", slimwork=True,
                         batch=B if B > 1 else None)
        t1 = time.perf_counter()
        results = engine.run_many(roots)
        kernel_s = time.perf_counter() - t1
        if baseline is None:
            if B != 1:
                raise SystemExit("batches must include 1 (the baseline)")
            edges = [int(graph.degrees[np.isfinite(r.dist)].sum()) // 2
                     for r in results]
            baseline = (kernel_s, results, edges)
        base_s, base_results, edges = baseline
        identical = all(
            np.array_equal(a.dist, b.dist) and np.array_equal(a.parent, b.parent)
            for a, b in zip(base_results, results))
        teps = np.array(edges) / (kernel_s / len(roots))
        rows.append({
            "B": B,
            "kernel_s": kernel_s,
            "speedup_vs_B1": base_s / kernel_s,
            "hmean_teps": float(teps.size / np.sum(1.0 / teps)),
            "identical_to_B1": bool(identical),
        })
    return {
        "workload": {
            "scale": scale, "edgefactor": edgefactor,
            "n": graph.n, "m": graph.m, "nroots": int(roots.size),
            "seed": seed, "C": 16, "semiring": "sel-max", "slimwork": True,
            "representation": "slimsell", "build_s": build_s,
        },
        "batches": rows,
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(f"\n=== Batched MS-BFS ablation (scale={w['scale']}, "
          f"edgefactor={w['edgefactor']}, n={w['n']}, m={w['m']}, "
          f"{w['nroots']} roots) ===")
    hdr = f"{'B':>4s}  {'kernel s':>10s}  {'speedup':>8s}  {'hmean TEPS':>11s}  identical"
    print(hdr)
    print("-" * len(hdr))
    for r in payload["batches"]:
        print(f"{r['B']:4d}  {r['kernel_s']:10.3f}  {r['speedup_vs_B1']:7.2f}x "
              f" {r['hmean_teps']:11.3e}  {r['identical_to_B1']}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nroots", type=int, default=64)
    ap.add_argument("--batches", default="1,4,16,64",
                    help="comma-separated batch widths (must include 1)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke configuration (scale 10, 16 roots, "
                         "B in {1,4,16})")
    ap.add_argument("--output", default="BENCH_msbfs.json",
                    help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        scale, nroots = QUICK["scale"], QUICK["nroots"]
        edgefactor, batches = QUICK["edgefactor"], QUICK["batches"]
    else:
        scale, nroots, edgefactor = args.scale, args.nroots, args.edgefactor
        batches = [int(b) for b in args.batches.split(",")]

    payload = run_sweep(scale, edgefactor, nroots, batches,
                        seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    if not all(r["identical_to_B1"] for r in payload["batches"]):
        print("ERROR: a batched run diverged from the sequential baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
