"""Figure 6 — GPU analysis (Tesla K80, C=32): σ sweeps and SlimChunk.

Panels reproduced (scaled from n=2^20 / 2^18 to n=2^12):

* 6a — Kronecker σ sweep per semiring (DP included).
* 6b — ER σ sweep per semiring.
* 6c — per-iteration times per semiring at σ=2^10.
* 6d — SlimChunk on/off across σ (load imbalance from sorted heavy chunks).
* 6e — SlimChunk on/off per iteration at σ=2^10.

Shape targets: sel-max wins once DP is charged (no transformation); at very
large σ load imbalance degrades the unsplit schedule and SlimChunk recovers
it (the paper reports ≈50% in early iterations).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.slimchunk import make_work_units, unit_costs
from repro.formats.slimsell import SlimSell
from repro.sched.scheduling import imbalance, schedule_static
from repro.semirings import SEMIRINGS
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 32
SIGMAS = [1, 4, 16, 64, 256, 1024, 4096]
K80 = get_machine("tesla-k80")

#: Deterministic smoke configuration for the regression gate: the K80
#: σ sweep per semiring plus the SlimChunk on/off totals at full sort,
#: all counted-work × cost-model numbers (no wall clock).
QUICK = {"scale": 9, "edgefactor": 32, "seed": 2023,
         "sigmas": [1, 32, 512]}


def run_quick(scale: int | None = None, edgefactor: float | None = None,
              seed: int | None = None) -> dict:
    """Modeled Fig-6 numbers at a deterministic smoke scale."""
    from repro.graphs.kronecker import kronecker

    scale = QUICK["scale"] if scale is None else scale
    edgefactor = QUICK["edgefactor"] if edgefactor is None else edgefactor
    seed = QUICK["seed"] if seed is None else seed
    sigmas = QUICK["sigmas"]
    g = kronecker(scale, edgefactor, seed=seed)
    root = int(np.argmax(g.degrees))
    totals = {}
    for sigma in sigmas:
        rep = SlimSell(g, C, sigma)
        for name in SEMIRINGS:
            _, _, total = modeled_spmv_run(K80, rep, name, root,
                                           sched="static", include_dp=True)
            totals[f"kron.{name}.sigma{sigma}"] = float(total)
    rep = SlimSell(g, C, g.n)
    imbalances = {}
    for label, split in (("slimchunk_off", None), ("slimchunk_on", 4)):
        _, _, total = modeled_spmv_run(K80, rep, "tropical", root,
                                       sched="static", include_dp=False,
                                       slimchunk=split)
        totals[f"fullsort.{label}"] = float(total)
        costs = unit_costs(make_work_units(rep.cl, split), C)
        imbalances[label] = float(
            imbalance(schedule_static(costs, K80.units)))
    return {
        "workload": {"scale": scale, "edgefactor": edgefactor, "seed": seed,
                     "n": g.n, "m": g.m, "root": root, "C": C,
                     "machine": "tesla-k80", "sigmas": sigmas},
        "imbalance": imbalances,
        "modeled_total_s": totals,
    }


def test_fig6a_kronecker_sigma(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))

    def sweep():
        out = {name: [] for name in SEMIRINGS}
        for sigma in SIGMAS:
            rep = SlimSell(g, C, sigma)
            for name in SEMIRINGS:
                _, _, total = modeled_spmv_run(K80, rep, name, root,
                                               sched="static", include_dp=True)
                out[name].append(total)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[s] + [out[name][i] for name in SEMIRINGS]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 6a (scaled): GPU Kronecker σ sweep — modeled total [s]",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("fig06a_gpu_kron_sigma", {"sigmas": SIGMAS, **out})
    # sel-max needs no DP: best total at moderate σ (paper's observation).
    mid = len(SIGMAS) // 2
    assert out["sel-max"][mid] <= min(
        out[name][mid] for name in ("tropical", "real", "boolean"))
    # Sorting up to σ=C brings nothing.
    for name in SEMIRINGS:
        assert out[name][0] / out[name][2] < 1.25, name


def test_fig6b_er_sigma(er_bench, benchmark):
    g = er_bench
    root = int(np.argmax(g.degrees))

    def sweep():
        out = {name: [] for name in SEMIRINGS}
        for sigma in SIGMAS:
            rep = SlimSell(g, C, sigma)
            for name in SEMIRINGS:
                _, _, total = modeled_spmv_run(K80, rep, name, root,
                                               sched="static", include_dp=True)
                out[name].append(total)
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[s] + [out[name][i] for name in SEMIRINGS]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 6b (scaled): GPU ER σ sweep — modeled total [s]",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("fig06b_gpu_er_sigma", {"sigmas": SIGMAS, **out})
    # Uniform degrees: the σ effect is modest (wider C=32 chunks still see
    # some degree spread at this small n, hence a bit above the CPU's).
    for name in SEMIRINGS:
        assert out[name][0] / out[name][-1] < 1.6, name


def test_fig6c_per_iteration(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, C, 1024)

    def sweep():
        series = {}
        for name in SEMIRINGS:
            _, times, _ = modeled_spmv_run(K80, rep, name, root,
                                           include_dp=False)
            series[name] = [t.t_total for t in times]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    kmax = max(len(s) for s in series.values())
    rows = [[k + 1] + [series[n][k] if k < len(series[n]) else ""
                       for n in SEMIRINGS] for k in range(kmax)]
    print_table("Fig 6c (scaled): GPU per-iteration, σ=2^10 — modeled [s]",
                ["iter"] + list(SEMIRINGS), rows)
    save_results("fig06c_gpu_iters", series)
    # Inner-loop differences between semirings are small (§IV-A2).
    totals = {n: sum(s) for n, s in series.items()}
    assert max(totals.values()) / min(totals.values()) < 1.4


def test_fig6d_slimchunk_sigma(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))

    def sweep():
        out = {"no-slimchunk": [], "slimchunk": [], "imbalance-no": [],
               "imbalance-yes": []}
        for sigma in SIGMAS:
            rep = SlimSell(g, C, sigma)
            _, _, t_no = modeled_spmv_run(K80, rep, "tropical", root,
                                          sched="static", include_dp=False)
            _, _, t_yes = modeled_spmv_run(K80, rep, "tropical", root,
                                           sched="static", include_dp=False,
                                           slimchunk=4)
            out["no-slimchunk"].append(t_no)
            out["slimchunk"].append(t_yes)
            for key, split in (("imbalance-no", None), ("imbalance-yes", 4)):
                costs = unit_costs(make_work_units(rep.cl, split), C)
                out[key].append(imbalance(schedule_static(costs, K80.units)))
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[s, out["no-slimchunk"][i], out["slimchunk"][i],
             f"{out['imbalance-no'][i]:.2f}", f"{out['imbalance-yes'][i]:.2f}"]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 6d (scaled): SlimChunk across σ — modeled total [s]",
                ["sigma", "No SlimChunk", "SlimChunk", "imbal(no)", "imbal(yes)"],
                rows)
    save_results("fig06d_slimchunk_sigma", out)
    # At full sort the heavy head chunks starve the schedule; SlimChunk fixes it.
    assert out["imbalance-no"][-1] > out["imbalance-yes"][-1]
    assert out["slimchunk"][-1] <= out["no-slimchunk"][-1]


def test_fig6e_slimchunk_per_iteration(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, C, 1024)

    def sweep():
        series = {}
        for label, split in (("no-slimchunk", None), ("slimchunk", 4)):
            _, times, _ = modeled_spmv_run(K80, rep, "tropical", root,
                                           sched="static", include_dp=False,
                                           slimchunk=split, slimwork=True)
            series[label] = [t.t_total for t in times]
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    kmax = max(len(s) for s in series.values())
    rows = [[k + 1] + [series[n][k] if k < len(series[n]) else ""
                       for n in series] for k in range(kmax)]
    print_table("Fig 6e (scaled): SlimChunk per iteration, σ=2^10 [s]",
                ["iter"] + list(series), rows)
    save_results("fig06e_slimchunk_iters", series)
    # Early iterations benefit most (the paper reports ≈50% there).
    assert series["slimchunk"][0] <= series["no-slimchunk"][0]
