#!/usr/bin/env python
"""B-sweep ablation of the batched distributed-BFS model (§VI extension).

Runs the Graph500-style multi-root workload (Kronecker graph, sampled valid
roots, SlimSell C=16) through the 1D and 2D distributed cost models at
batch widths B over both modeled interconnects, and reports the per-source
amortization of the per-layer collectives: total bytes per rank, the α
latency share (paid once per layer for the whole batch), and the modeled
end-to-end seconds.  Every batched run is checked bit-identical (per-source
distances) to the B=1 sweep before its numbers are trusted.

The modeled series are deterministic (they derive from chunk activity and
the analytic cost model, not wall clock), which is what makes this file a
usable CI regression baseline — see ``benchmarks/check_regression.py``.

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_dist_batch.json``) that CI uploads
as the perf-trajectory artifact and gates on.

Usage::

    python benchmarks/bench_dist_batch.py              # scale 13, 64 roots
    python benchmarks/bench_dist_batch.py --quick      # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import write_bench_json

from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import NETWORKS
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

RANKS_1D = 16
GRID_2D = (4, 4)

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.
QUICK = {"scale": 10, "edgefactor": 16, "nroots": 16, "batches": [1, 4, 16]}


def run_sweep(
    scale: int,
    edgefactor: float,
    nroots: int,
    batches: list[int],
    seed: int = 1,
) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    rep = SlimSell(graph, 16, graph.n)
    build_s = time.perf_counter() - t0
    roots = sample_roots(graph, nroots, seed)
    machine = get_machine("knl")
    part = Partition1D.balanced(rep.cl, RANKS_1D)

    def run_1d(rs, net, B):
        return bfs_dist_1d(rep, rs, part, machine, net, batch=B)

    def run_2d(rs, net, B):
        return bfs_dist_2d(rep, rs, GRID_2D, machine, net, batch=B)

    layouts = {
        f"1d-p{RANKS_1D}": run_1d,
        f"2d-{GRID_2D[0]}x{GRID_2D[1]}": run_2d,
    }

    out: dict = {
        "workload": {
            "scale": scale,
            "edgefactor": edgefactor,
            "n": graph.n,
            "m": graph.m,
            "nroots": int(roots.size),
            "seed": seed,
            "C": 16,
            "representation": "slimsell",
            "machine": "knl",
            "ranks_1d": RANKS_1D,
            "grid_2d": list(GRID_2D),
            "build_s": build_s,
        },
        "layouts": {},
    }
    for label, run in layouts.items():
        series: dict = {}
        for net_name in sorted(NETWORKS):
            net = NETWORKS[net_name]
            baseline = None
            rows = []
            for B in sorted(set(batches)):
                t1 = time.perf_counter()
                res = run(roots, net, B)
                sim_wall_s = time.perf_counter() - t1
                if baseline is None:
                    if B != 1:
                        raise SystemExit("batches must include 1 (baseline)")
                    baseline = res
                identical = bool(np.array_equal(res.dists, baseline.dists))
                speedup = baseline.modeled_total_s / res.modeled_total_s
                rows.append(
                    {
                        "B": B,
                        "groups": res.groups,
                        "union_iterations": res.n_iterations,
                        "comm_bytes_per_rank": res.total_comm_bytes,
                        "bytes_per_source": res.total_comm_bytes / res.n_sources,
                        "comm_latency_s": res.total_comm_latency_s,
                        "t_local_s": sum(it.t_local_s for it in res.iterations),
                        "t_comm_s": sum(it.t_comm_s for it in res.iterations),
                        "modeled_total_s": res.modeled_total_s,
                        "modeled_per_source_s": res.modeled_per_source_s,
                        "speedup_vs_B1": speedup,
                        "identical_to_B1": identical,
                        "sim_wall_s": sim_wall_s,
                    }
                )
            series[net_name] = rows
        out["layouts"][label] = {"series": series}
    return out


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(
        f"\n=== Batched distributed-BFS ablation (scale={w['scale']}, "
        f"edgefactor={w['edgefactor']}, n={w['n']}, m={w['m']}, "
        f"{w['nroots']} roots) ==="
    )
    hdr = (
        f"{'layout':>8}  {'network':>12}  {'B':>3}  {'bytes/rank':>10}  "
        f"{'latency us':>10}  {'model ms':>9}  {'ms/src':>7}  "
        f"{'speedup':>7}  identical"
    )
    print(hdr)
    print("-" * len(hdr))
    for label, layout in payload["layouts"].items():
        for net_name, rows in layout["series"].items():
            for r in rows:
                print(
                    f"{label:>8}  {net_name:>12}  {r['B']:3d}  "
                    f"{r['comm_bytes_per_rank']:10d}  "
                    f"{r['comm_latency_s'] * 1e6:10.1f}  "
                    f"{r['modeled_total_s'] * 1e3:9.3f}  "
                    f"{r['modeled_per_source_s'] * 1e3:7.3f}  "
                    f"{r['speedup_vs_B1']:6.2f}x  {r['identical_to_B1']}"
                )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=13)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nroots", type=int, default=64)
    ap.add_argument(
        "--batches",
        default="1,4,16,64",
        help="comma-separated batch widths (must include 1)",
    )
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke configuration (scale 10, 16 roots, B in {1,4,16})",
    )
    ap.add_argument(
        "--output",
        default="BENCH_dist_batch.json",
        help="JSON results path",
    )
    args = ap.parse_args(argv)

    if args.quick:
        scale, nroots = QUICK["scale"], QUICK["nroots"]
        edgefactor, batches = QUICK["edgefactor"], QUICK["batches"]
    else:
        scale, nroots, edgefactor = args.scale, args.nroots, args.edgefactor
        batches = [int(b) for b in args.batches.split(",")]

    payload = run_sweep(scale, edgefactor, nroots, batches, seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    ok = all(
        r["identical_to_B1"]
        for layout in payload["layouts"].values()
        for rows in layout["series"].values()
        for r in rows
    )
    if not ok:
        print(
            "ERROR: a batched sweep diverged from the B=1 baseline",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
