"""Headline protocol — Graph500-style TEPS comparison (§I: "accelerates a
tuned Graph500 BFS code by up to 33%").

Runs the official kernel protocol (random valid roots, five-check tree
validation, harmonic-mean TEPS) over three engines on the same Kronecker
problem: the traditional top-down baseline, BFS-SpMV with SlimSell +
SlimWork, and the push/pull hybrid.  Wall-clock TEPS of the NumPy engines
measure algorithmic work; the modeled cross-architecture comparison lives
in the Fig 9/10 benches.
"""

from __future__ import annotations


from repro.bfs.hybrid import bfs_hybrid
from repro.bfs.spmv import BFSSpMV
from repro.bfs.traditional import bfs_top_down
from repro.formats.slimsell import SlimSell
from repro.graph500 import run_graph500

from _common import print_table, save_results

SCALE, EDGEFACTOR, NROOTS = 10, 16, 12


def test_graph500_protocol(benchmark):
    def make_spmv(graph):
        rep = SlimSell(graph, 16, graph.n)
        eng = BFSSpMV(rep, "sel-max", slimwork=True)
        return lambda g, r: eng.run(r), rep

    # Build once per engine via the kernel's own construction step.
    def run_all():
        out = {}
        out["traditional"] = run_graph500(
            SCALE, EDGEFACTOR, bfs=bfs_top_down, nroots=NROOTS, seed=5)
        from repro.graphs.kronecker import kronecker

        g = kronecker(SCALE, EDGEFACTOR, seed=5)
        spmv_fn, rep = make_spmv(g)
        out["spmv-slimsell"] = run_graph500(
            SCALE, EDGEFACTOR, bfs=spmv_fn, nroots=NROOTS, seed=5)
        out["hybrid"] = run_graph500(
            SCALE, EDGEFACTOR, bfs=lambda gg, r: bfs_hybrid(rep, r),
            nroots=NROOTS, seed=5)
        return out

    reports = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    payload = {}
    for name, rpt in reports.items():
        rows.append([name, len(rpt.runs), f"{rpt.harmonic_mean_teps:.3e}",
                     f"{rpt.min_teps:.3e}", f"{rpt.max_teps:.3e}",
                     f"{rpt.median_time_s * 1e3:.2f}"])
        payload[name] = {
            "harmonic_mean_teps": rpt.harmonic_mean_teps,
            "min_teps": rpt.min_teps, "max_teps": rpt.max_teps,
            "median_time_ms": rpt.median_time_s * 1e3,
        }
    print_table(
        f"Graph500 protocol (scale={SCALE}, edgefactor={EDGEFACTOR}, "
        f"{NROOTS} validated roots)",
        ["engine", "roots", "hmean TEPS", "min", "max", "median ms"], rows)
    save_results("graph500", payload)

    # Every engine's trees passed the five-check validation (implicit), and
    # every engine reports sane TEPS.
    for name, rpt in reports.items():
        assert rpt.harmonic_mean_teps > 0, name
        assert len(rpt.runs) == NROOTS, name
