"""Ablation — chunk engine vs layer engine wall clock.

A meta-demonstration of the paper's own thesis: the chunk engine executes
the listings chunk-by-chunk (a Python-level loop ≈ scalar execution), while
the layer engine processes all chunks of one column layer in a single
vectorized NumPy operation (≈ wide SIMD).  Same results, counted work
identical — the wall-clock gap is pure vectorization.
"""

from __future__ import annotations

import time

import numpy as np

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from _common import print_table, save_results


def test_engine_vectorization_gap(benchmark):
    g = kronecker(12, 16, seed=17)
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, 8, g.n)

    chunk_eng = BFSSpMV(rep, "tropical", engine="chunk", compute_parents=False)
    layer_eng = BFSSpMV(rep, "tropical", engine="layer", compute_parents=False)

    t0 = time.perf_counter()
    res_chunk = chunk_eng.run(root)
    t_chunk = time.perf_counter() - t0

    res_layer = benchmark.pedantic(lambda: layer_eng.run(root),
                                   rounds=3, iterations=1)
    t_layer = min(res_layer.total_time_s, 10.0)

    np.testing.assert_array_equal(res_chunk.dist, res_layer.dist)
    speedup = t_chunk / t_layer
    print_table(
        "Ablation: execution engines (identical results, identical work)",
        ["engine", "wall time [s]", "speedup"],
        [["chunk (per-chunk loop)", f"{t_chunk:.4f}", "1.0"],
         ["layer (vectorized)", f"{t_layer:.4f}", f"{speedup:.1f}x"]])
    save_results("ablation_engines", {
        "chunk_s": t_chunk, "layer_s": t_layer, "speedup": speedup})
    # Vectorizing across chunks must clearly win — that's the paper's
    # point.  (The gap grows with graph size; at this CI scale the layer
    # engine's residual per-layer Python overhead caps it at a few x.)
    assert speedup > 2.0
