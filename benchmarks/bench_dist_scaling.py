"""Extension bench — §VI distributed-memory scaling (1D decomposition).

Strong scaling of the simulated distributed BFS-SpMV: one graph, P ∈
{1, 2, 4, 8, 16} ranks of KNL nodes on a Cray-class interconnect.  The
classic 1D-BFS story must emerge: local compute shrinks ~1/P while the
frontier allgather stays constant, so communication dominates at scale —
the reason [9] moves to 2D decompositions, and the challenge §VI leaves
open for SlimSell.  Also contrasts naive block partitioning against
work-balanced bands (the distributed analog of Fig 5a's imbalance).
"""

from __future__ import annotations

import numpy as np

from repro.bfs.validate import reference_distances
from repro.dist.bfs1d import bfs_dist_1d
from repro.dist.bfs2d import bfs_dist_2d
from repro.dist.network import CRAY_ARIES
from repro.dist.partition import Partition1D
from repro.formats.slimsell import SlimSell
from repro.vec.machine import get_machine

from _common import print_table, save_results

RANKS = [1, 2, 4, 8, 16]
KNL = get_machine("knl")


def test_dist_strong_scaling(kron_bench, benchmark):
    g = kron_bench
    rep = SlimSell(g, 16, g.n)
    root = int(np.argmax(g.degrees))
    ref = reference_distances(g, root)

    def sweep():
        out = {}
        for P in RANKS:
            res = bfs_dist_1d(rep, root, Partition1D.balanced(rep.cl, P),
                              KNL, CRAY_ARIES)
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all(), f"P={P}: wrong distances"
            out[P] = {
                "t_local": sum(it.t_local_s for it in res.iterations),
                "t_comm": sum(it.t_comm_s for it in res.iterations),
                "t_total": res.modeled_total_s,
                "comm_bytes": res.total_comm_bytes,
                "imbalance": float(np.mean([it.imbalance
                                            for it in res.iterations])),
            }
        return out

    out = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[P, v["t_local"], v["t_comm"], v["t_total"],
             f"{out[1]['t_total'] / v['t_total']:.2f}",
             f"{v['imbalance']:.2f}"] for P, v in out.items()]
    print_table(
        "§VI (extension): 1D-distributed BFS strong scaling (KNL + Aries)",
        ["ranks", "t_local [s]", "t_comm [s]", "t_total [s]", "speedup",
         "imbalance"], rows)
    save_results("dist_scaling", out)

    # Local compute shrinks with P …
    assert out[16]["t_local"] < out[1]["t_local"]
    # … but the frontier allgather does not, so communication's share grows.
    frac = {P: v["t_comm"] / v["t_total"] for P, v in out.items() if P > 1}
    assert frac[16] > frac[2]
    # Naive block partitioning is worse-balanced than prefix-sum bands.
    naive = bfs_dist_1d(rep, root, Partition1D.blocks(rep.nc, 8),
                        KNL, CRAY_ARIES)
    balanced = bfs_dist_1d(rep, root, Partition1D.balanced(rep.cl, 8),
                           KNL, CRAY_ARIES)
    assert balanced.iterations[0].imbalance <= naive.iterations[0].imbalance


def test_dist_1d_vs_2d_communication(kron_bench, benchmark):
    """[9]'s scalability argument: 2D grids shrink per-rank traffic."""
    g = kron_bench
    rep = SlimSell(g, 16, g.n)
    root = int(np.argmax(g.degrees))
    ref = reference_distances(g, root)

    def compare():
        out = {}
        for label, run in (
            ("1D P=16", lambda: bfs_dist_1d(
                rep, root, Partition1D.balanced(rep.cl, 16), KNL, CRAY_ARIES)),
            ("2D 4x4", lambda: bfs_dist_2d(rep, root, (4, 4), KNL, CRAY_ARIES)),
            ("2D 8x2", lambda: bfs_dist_2d(rep, root, (8, 2), KNL, CRAY_ARIES)),
        ):
            res = run()
            same = (res.dist == ref) | (np.isinf(res.dist) & np.isinf(ref))
            assert same.all(), label
            out[label] = {
                "comm_per_iter": res.iterations[0].comm_bytes,
                "t_comm": sum(it.t_comm_s for it in res.iterations),
                "t_total": res.modeled_total_s,
            }
        return out

    out = benchmark.pedantic(compare, rounds=1, iterations=1)
    print_table(
        "§VI (extension): 1D vs 2D decomposition at 16 ranks",
        ["layout", "comm bytes/iter", "t_comm [s]", "t_total [s]"],
        [[k, v["comm_per_iter"], v["t_comm"], v["t_total"]]
         for k, v in out.items()])
    save_results("dist_1d_vs_2d", out)
    assert out["2D 4x4"]["comm_per_iter"] < out["1D P=16"]["comm_per_iter"]
