"""Table III — storage complexity of Sell-C-σ, CSR, AL, and SlimSell.

Regenerates the paper's cell-count comparison on the benchmark graphs and
asserts the measured array sizes equal the closed-form formulas, the
headline ≈50% Sell-C-σ reduction, and inequality (3)'s AL comparison.
"""

from __future__ import annotations

from repro.formats.storage import formula_cells, storage_report
from _common import print_table, save_results


def test_table3_cells(kron_bench, er_bench, benchmark):
    rows = []
    payload = {}
    for label, g in (("kronecker", kron_bench), ("erdos-renyi", er_bench)):
        rep = benchmark.pedantic(
            lambda g=g: storage_report(g, C=8, sigma=g.n),
            rounds=1, iterations=1) if label == "kronecker" else storage_report(
            g, C=8, sigma=g.n)
        f = formula_cells(g.n, g.m, 8, rep.padding_slots)
        assert (rep.csr_cells, rep.al_cells, rep.sell_cells,
                rep.slimsell_cells) == (f["csr"], f["al"], f["sell"], f["slimsell"])
        rows.append([label, g.n, g.m, rep.padding_slots, rep.csr_cells,
                     rep.al_cells, rep.sell_cells, rep.slimsell_cells,
                     f"{rep.slim_vs_sell:.3f}"])
        payload[label] = {
            "n": g.n, "m": g.m, "P_slots": rep.padding_slots,
            "csr": rep.csr_cells, "al": rep.al_cells,
            "sell": rep.sell_cells, "slimsell": rep.slimsell_cells,
            "slim_vs_sell": rep.slim_vs_sell,
            "slim_beats_al": rep.slim_beats_al,
        }
        # Headline claims.
        assert rep.slim_vs_sell < 0.62, "SlimSell should approach 1/2 of Sell-C-σ"
        assert rep.slimsell_cells < rep.csr_cells
    print_table(
        "Table III (measured cells, C=8, σ=n)",
        ["graph", "n", "m", "P", "CSR", "AL", "Sell-C-σ", "SlimSell", "slim/sell"],
        rows)
    save_results("table3_storage", payload)
