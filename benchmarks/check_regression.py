#!/usr/bin/env python
"""Benchmark regression gate: re-run the --quick ablations, compare baselines.

The committed ``BENCH_*.json`` files carry, next to the full-scale ablation
payload, a ``quick_baseline`` section: the same sweep at the CI smoke
configuration (each bench module's ``QUICK`` dict).  This gate re-runs those
quick sweeps in-process and fails (exit 1) if any kernel point regresses by
more than ``--tolerance`` (default 25%) against its committed baseline.

What is compared is deliberately machine-portable:

* ``bench_msbfs_batch`` / ``bench_mshybrid`` — batching/direction speedup
  *ratios* (kernel-time quotients measured in the same process, so the
  host's absolute speed divides out);
* ``bench_dist_batch`` — the distributed model's ``modeled_total_s`` and
  ``comm_bytes_per_rank`` series, which are deterministic functions of the
  code (chunk activity × analytic cost model), i.e. exact change detectors;
* ``bench_serve`` — the serving layer's batched-vs-per-query kernel
  throughput *ratios* (same-process quotients, machine-portable), plus
  the MSHR Zipf-ablation ``reuse_rate`` / ``columns_per_query`` ratios,
  which are seed-deterministic (virtual-clock) exact change detectors;
* ``bench_exec`` — the executed backend's critical-path speedup *ratios*
  (slowest-shard vs single-shard compute seconds from the same process,
  machine-portable; the threads backend's wall clock is reported in the
  artifact but never gated, since it tracks the host's core count);
* ``bench_resilience`` — goodput/timeout/retry curves vs injected fault
  rate (virtual clock + seeded fault stream + modeled service times) and
  the dist tier's checkpoint-vs-recompute overhead ratios: fully
  deterministic, gated exactly;
* ``bench_fig01_headline`` — the modeled single-source Fig-1 totals
  (counted work × KNL cost model: deterministic, like the dist series);
* ``bench_fig05``–``bench_fig10`` — the paper-figure surface: modeled
  σ-sweep / SlimWork / SlimChunk totals (Dora, K80, KNL), exact storage
  cells, and the traditional-vs-algebraic and CPU-vs-GPU speedup ratios
  — all counted-work × cost-model numbers, gated exactly;
* ``bench_capacity`` — the capacity planner: per-target feasibility
  counts, the cheapest configuration (rank count and its p99), the
  chosen checkpoint interval's p99 under rank failures, and the
  weighted-vs-uniform heterogeneous placement improvements (virtual
  clocks + seeded streams: fully deterministic, gated exactly).

Usage::

    python benchmarks/check_regression.py                   # gate (CI)
    python benchmarks/check_regression.py --list            # gate names
    python benchmarks/check_regression.py --tolerance 0.4   # looser gate
    python benchmarks/check_regression.py --update-baselines
    python benchmarks/check_regression.py --inject 2.0      # self-test: a
        # simulated 2x slowdown of every timing metric must trip the gate
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import dataclass, replace
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


@dataclass(frozen=True)
class Point:
    """One gated benchmark metric."""

    name: str
    value: float
    direction: str  # "higher" or "lower" is better
    timing: bool  # scaled by --inject (self-test slowdowns)


def _run_msbfs_quick() -> dict:
    import bench_msbfs_batch as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nroots"],
        m.QUICK["batches"],
    )


def _extract_msbfs(payload: dict) -> list[Point]:
    return [
        Point(f"B={r['B']}.speedup_vs_B1", r["speedup_vs_B1"], "higher", True)
        for r in payload["batches"]
        if r["B"] != 1
    ]


def _run_mshybrid_quick() -> dict:
    import bench_mshybrid as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nroots"],
        m.QUICK["batches"],
        m.QUICK["alphas"],
    )


def _extract_mshybrid(payload: dict) -> list[Point]:
    return [
        Point(
            f"B={r['B']},alpha={r['alpha']:g}.speedup_vs_allpull",
            r["speedup_vs_allpull_same_B"],
            "higher",
            True,
        )
        for r in payload["grid"]
    ]


def _run_dist_batch_quick() -> dict:
    import bench_dist_batch as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nroots"],
        m.QUICK["batches"],
    )


def _extract_dist_batch(payload: dict) -> list[Point]:
    points = []
    for label, layout in payload["layouts"].items():
        for net, rows in layout["series"].items():
            for r in rows:
                key = f"{label}/{net}/B={r['B']}"
                points.append(
                    Point(
                        f"{key}.modeled_total_s",
                        r["modeled_total_s"],
                        "lower",
                        True,
                    )
                )
                points.append(
                    Point(
                        f"{key}.comm_bytes_per_rank",
                        float(r["comm_bytes_per_rank"]),
                        "lower",
                        False,
                    )
                )
    return points


def _run_serve_quick() -> dict:
    import bench_serve as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nqueries"],
        m.QUICK["root_pool"],
        m.QUICK["zipf"],
        m.QUICK["max_batches"],
        m.QUICK["rates"],
        m.QUICK["zipfs"],
    )


def _extract_serve(payload: dict) -> list[Point]:
    points = [
        Point(
            f"rate={r['rate']},B={r['B']}.speedup_vs_per_query",
            r["speedup_vs_per_query"],
            "higher",
            True,
        )
        for r in payload["grid"]
        if r["B"] != 1
    ]
    # MSHR Zipf ablation: reuse under burst arrivals is decided by the
    # virtual clock, so these ratios are seed-deterministic (exact change
    # detectors, not timing points).  reuse_rate dropping or
    # columns_per_query rising means duplicate in-flight misses started
    # paying for extra kernel columns again.
    for r in payload.get("mshr_zipf", {}).get("rows", []):
        key = f"zipf={r['zipf']:g}"
        points.append(Point(f"{key}.reuse_rate", r["reuse_rate"], "higher", False))
        points.append(
            Point(
                f"{key}.columns_per_query",
                r["columns_per_query"],
                "lower",
                False,
            )
        )
    # Tracing: the disabled-path ratio is a timing point (guard-free span
    # work leaking onto the tracer=None path pushes it toward 1.0); the
    # span rate is a seed-deterministic detector of the instrumentation
    # surface itself.
    tr = payload.get("trace")
    if tr:
        points.append(
            Point(
                "trace.disabled_over_enabled",
                tr["disabled_over_enabled"],
                "lower",
                True,
            )
        )
        points.append(
            Point("trace.spans_per_query", tr["spans_per_query"], "lower", False)
        )
    return points


def _run_resilience_quick() -> dict:
    import bench_resilience as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nqueries"],
        m.QUICK["root_pool"],
        m.QUICK["zipf"],
        m.QUICK["rate"],
        m.QUICK["deadline_s"],
        m.QUICK["fault_rates"],
        m.QUICK["dist_ranks"],
        m.QUICK["dist_batch"],
        m.QUICK["failure_probs"],
        m.QUICK["checkpoint_intervals"],
    )


def _extract_resilience(payload: dict) -> list[Point]:
    # Virtual clocks + seeded fault streams + modeled service times: every
    # number is an exact (timing-free) change detector.  Goodput dropping
    # or timeout/retry rates rising means a resilience policy regressed.
    points = []
    for r in payload["serve"]["rows"]:
        key = f"fault={r['fault_rate']:g}"
        points.append(Point(f"{key}.goodput", r["goodput"], "higher", False))
        points.append(
            Point(f"{key}.timeout_rate", r["timeout_rate"], "lower", False)
        )
        points.append(
            Point(
                f"{key}.retries_per_query",
                r["retries_per_query"],
                "lower",
                False,
            )
        )
    for r in payload["dist"]["rows"]:
        ck = (
            "never"
            if r["checkpoint_interval"] is None
            else r["checkpoint_interval"]
        )
        points.append(
            Point(
                f"p={r['rank_failure_prob']:g},ckpt={ck}.overhead_ratio",
                r["overhead_ratio"],
                "lower",
                False,
            )
        )
    return points


def _run_exec_quick() -> dict:
    import bench_exec as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["nroots"],
        m.QUICK["workers"],
    )


def _extract_exec(payload: dict) -> list[Point]:
    # Critical-path speedup ratios: quotients of shard timings measured in
    # the same process, so the host's absolute speed divides out (and the
    # single-core CI host's inability to show wall-clock parallel speedup
    # does not matter — the threads wall times are never gated).
    return [
        Point(
            f"W={r['workers']}.speedup_critical_path",
            r["speedup_critical_path"],
            "higher",
            True,
        )
        for r in payload["workers"]
        if r["workers"] != 1
    ]


def _run_fig01_quick() -> dict:
    import bench_fig01_headline as m

    return m.run_quick()


def _extract_fig01(payload: dict) -> list[Point]:
    return [
        Point(f"{name}.modeled_total_s", value, "lower", True)
        for name, value in payload["modeled_total_s"].items()
    ]


def _extract_modeled_totals(payload: dict) -> list[Point]:
    """Shared extractor of the fig benches' ``modeled_total_s`` dicts:
    every entry is a counted-work × cost-model time, lower is better."""
    return [
        Point(f"{name}.modeled_total_s", value, "lower", True)
        for name, value in payload["modeled_total_s"].items()
    ]


def _make_fig_runner(module_name: str):
    def _run() -> dict:
        import importlib

        return importlib.import_module(module_name).run_quick()

    return _run


def _extract_fig07(payload: dict) -> list[Point]:
    # Storage cells are exact integers (format layout, no timing): gate
    # the SlimSell cell count and its ratio to AL bit for bit.
    points = []
    for key, v in payload["cells"].items():
        points.append(
            Point(f"{key}.slim_cells", float(v["slim"]), "lower", False)
        )
        points.append(
            Point(f"{key}.slim_over_al", v["slim_over_al"], "lower", False)
        )
    return points


def _extract_fig09(payload: dict) -> list[Point]:
    points = _extract_modeled_totals(payload)
    points.extend(
        Point(f"{key}.speedup_vs_trad", value, "higher", False)
        for key, value in payload["speedups"].items()
    )
    return points


def _extract_fig10(payload: dict) -> list[Point]:
    points = _extract_modeled_totals(payload)
    points.extend(
        Point(f"{key}.cpu_over_gpu", value, "higher", False)
        for key, value in payload["cpu_over_gpu"].items()
    )
    return points


def _run_capacity_quick() -> dict:
    import bench_capacity as m

    return m.run_sweep(
        m.QUICK["scale"],
        m.QUICK["edgefactor"],
        m.QUICK["targets"],
        m.QUICK["ranks"],
        m.QUICK["max_batches"],
        m.QUICK["nqueries"],
        m.QUICK["root_pool"],
        m.QUICK["zipf"],
        m.QUICK["fault_prob"],
        m.QUICK["fault_target"],
        m.QUICK["checkpoint_intervals"],
        m.QUICK["hetero_machines"],
    )


def _extract_capacity(payload: dict) -> list[Point]:
    # Virtual clocks + seeded streams + modeled service times: the whole
    # plan is deterministic, so the planner's *answers* gate exactly —
    # fewer feasible configs, a costlier cheapest configuration, a worse
    # chosen checkpoint policy, or a smaller placement win all fail.
    points = []
    for t in payload["plan"]["targets"]:
        key = f"qps={t['qps']:g}"
        points.append(
            Point(
                f"{key}.feasible_configs",
                float(t["feasible_configs"]),
                "higher",
                False,
            )
        )
        best = t["best"]
        if best is not None:
            points.append(
                Point(f"{key}.best_ranks", float(best["ranks"]), "lower", False)
            )
            points.append(
                Point(
                    f"{key}.best_p99_s",
                    best["latency_p99_s"],
                    "lower",
                    False,
                )
            )
    fcell = payload["faulty"]["grid"][0]["per_target"][0]
    points.append(
        Point(
            "faulty.chosen_ckpt_p99_s",
            fcell["latency_p99_s"],
            "lower",
            False,
        )
    )
    pl = payload["placement"]
    points.append(
        Point(
            "placement.sweep_improvement",
            pl["sweep_improvement"],
            "higher",
            False,
        )
    )
    points.append(
        Point(
            "placement.p99_improvement",
            pl["p99_improvement"],
            "higher",
            False,
        )
    )
    return points


# (baseline file, quick runner, point extractor, deterministic?) — a
# deterministic bench's points are pure functions of the code, so the
# best-of-N noise envelope degenerates and one sweep suffices.
BENCHES = {
    "msbfs": ("BENCH_msbfs.json", _run_msbfs_quick, _extract_msbfs, False),
    "mshybrid": (
        "BENCH_mshybrid.json",
        _run_mshybrid_quick,
        _extract_mshybrid,
        False,
    ),
    "dist_batch": (
        "BENCH_dist_batch.json",
        _run_dist_batch_quick,
        _extract_dist_batch,
        True,
    ),
    "serve": ("BENCH_serve.json", _run_serve_quick, _extract_serve, False),
    "exec": ("BENCH_exec.json", _run_exec_quick, _extract_exec, False),
    "resilience": (
        "BENCH_resilience.json",
        _run_resilience_quick,
        _extract_resilience,
        True,
    ),
    "fig01": ("BENCH_fig01.json", _run_fig01_quick, _extract_fig01, True),
    "fig05": (
        "BENCH_fig05.json",
        _make_fig_runner("bench_fig05_cpu_sigma"),
        _extract_modeled_totals,
        True,
    ),
    "fig06": (
        "BENCH_fig06.json",
        _make_fig_runner("bench_fig06_gpu"),
        _extract_modeled_totals,
        True,
    ),
    "fig07": (
        "BENCH_fig07.json",
        _make_fig_runner("bench_fig07_storage"),
        _extract_fig07,
        True,
    ),
    "fig08": (
        "BENCH_fig08.json",
        _make_fig_runner("bench_fig08_knl"),
        _extract_modeled_totals,
        True,
    ),
    "fig09": (
        "BENCH_fig09.json",
        _make_fig_runner("bench_fig09_knl_vs_trad"),
        _extract_fig09,
        True,
    ),
    "fig10": (
        "BENCH_fig10.json",
        _make_fig_runner("bench_fig10_gpu_vs_cpu"),
        _extract_fig10,
        True,
    ),
    "capacity": (
        "BENCH_capacity.json",
        _run_capacity_quick,
        _extract_capacity,
        True,
    ),
}


def list_benches() -> int:
    """Print every registered gate: name, baseline file, determinism."""
    width = max(len(name) for name in BENCHES)
    for name, (fname, _run, _extract, deterministic) in BENCHES.items():
        kind = "deterministic" if deterministic else "timing"
        print(f"{name:<{width}}  {fname:<26}  {kind}")
    return 0


def _load_baseline(path: Path) -> dict:
    with open(path) as fh:
        return json.load(fh)


def _improves(p: Point, prev: Point) -> bool:
    """True when ``p`` is a more favorable reading of the same metric."""
    if p.direction == "higher":
        return p.value > prev.value
    return p.value < prev.value


def _best_points(run, extract, repeats: int) -> dict[str, Point]:
    """Extract the per-point *best* over ``repeats`` quick sweeps.

    Quick-scale kernel times are tens of milliseconds, so single-shot
    speedup ratios jitter; the upper envelope of a few repeats is what the
    code is capable of, which is the stable quantity a 25% gate can hold.
    Deterministic (modeled) points are identical across repeats, so the
    envelope is a no-op for them.
    """
    best: dict[str, Point] = {}
    for _ in range(repeats):
        for p in extract(run()):
            prev = best.get(p.name)
            if prev is None or _improves(p, prev):
                best[p.name] = p
    return best


def _selected(only: list[str] | None) -> dict:
    """The benches to run: all of them, or the ``--only`` subset."""
    if not only:
        return BENCHES
    return {name: BENCHES[name] for name in only}


def update_baselines(baseline_dir: Path, repeats: int,
                     only: list[str] | None = None) -> int:
    for name, (fname, run, extract, deterministic) in _selected(only).items():
        path = baseline_dir / fname
        if not path.exists():
            print(f"SKIP {name}: no committed {fname} to stamp", flush=True)
            continue
        print(f"re-running quick sweep: {name} ...", flush=True)
        # Stamp one sweep's payload plus the best-of-N envelope of its
        # gated metrics, so baseline and gate read the same quantity.
        reps = 1 if deterministic else repeats
        fresh = run()
        best = {p.name: p for p in extract(fresh)}
        if reps > 1:
            for p in _best_points(run, extract, reps - 1).values():
                if _improves(p, best[p.name]):
                    best[p.name] = p
        fresh["gated_points"] = {p.name: p.value for p in best.values()}
        payload = _load_baseline(path)
        payload["quick_baseline"] = fresh
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"stamped quick_baseline into {path}")
    return 0


def check(baseline_dir: Path, tolerance: float, inject: float, repeats: int,
          only: list[str] | None = None) -> int:
    failures = 0
    compared = 0
    for name, (fname, run, extract, deterministic) in _selected(only).items():
        path = baseline_dir / fname
        if not path.exists():
            print(f"ERROR {name}: missing baseline {fname}", file=sys.stderr)
            return 2
        baseline = _load_baseline(path)
        if "quick_baseline" not in baseline:
            print(
                f"ERROR {name}: {fname} has no quick_baseline section; run "
                "python benchmarks/check_regression.py --update-baselines",
                file=sys.stderr,
            )
            return 2
        base_payload = baseline["quick_baseline"]
        base_points = {p.name: p for p in extract(base_payload)}
        for pname, pvalue in base_payload.get("gated_points", {}).items():
            if pname in base_points:
                base_points[pname] = replace(base_points[pname], value=pvalue)
        print(f"re-running quick sweep: {name} ...", flush=True)
        reps = 1 if deterministic else repeats
        fresh_points = _best_points(run, extract, reps).values()
        for p in fresh_points:
            base = base_points.get(p.name)
            if base is None:
                print(f"  NEW   {name}:{p.name} = {p.value:.4g} (no baseline)")
                continue
            value = p.value
            if p.timing and inject != 1.0:
                value = value / inject if p.direction == "higher" else value * inject
            if p.direction == "higher":
                bound = base.value * (1.0 - tolerance)
                bad = value < bound
            else:
                bound = base.value * (1.0 + tolerance)
                bad = value > bound
            compared += 1
            status = "FAIL" if bad else "ok"
            print(
                f"  {status:4s}  {name}:{p.name}  {value:.4g} vs "
                f"baseline {base.value:.4g} ({p.direction} is better, "
                f"bound {bound:.4g})"
            )
            failures += bad
    print(
        f"\n{compared} points compared, {failures} regression(s) "
        f"(tolerance {tolerance:.0%}"
        + (f", injected slowdown {inject:g}x" if inject != 1.0 else "")
        + ")"
    )
    return 1 if failures else 0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative regression per point (default 0.25)",
    )
    ap.add_argument(
        "--baseline-dir",
        default=str(REPO_ROOT),
        help="directory holding the committed BENCH_*.json files",
    )
    ap.add_argument(
        "--update-baselines",
        action="store_true",
        help="stamp fresh quick_baseline sections into the committed files",
    )
    ap.add_argument(
        "--inject",
        type=float,
        default=1.0,
        help="self-test: scale every timing metric as if the code ran this "
        "many times slower (the gate must fail for factors > 1+tolerance)",
    )
    ap.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="quick sweeps per bench; timing points gate on the best "
        "repeat to damp scheduler noise (default 3)",
    )
    ap.add_argument(
        "--only",
        action="append",
        choices=sorted(BENCHES),
        help="restrict to one bench (repeatable); default: all",
    )
    ap.add_argument(
        "--list",
        action="store_true",
        help="list the registered gates (name, baseline file, kind) and exit",
    )
    args = ap.parse_args(argv)
    if args.list:
        return list_benches()
    baseline_dir = Path(args.baseline_dir)
    if args.update_baselines:
        return update_baselines(baseline_dir, args.repeats, args.only)
    return check(baseline_dir, args.tolerance, args.inject, args.repeats,
                 args.only)


if __name__ == "__main__":
    sys.exit(main())
