"""Figure 9 — KNL: traditional BFS vs BFS-SpMV with SlimSell (sel-max, C=16).

Paper setup: dense Kronecker graphs (n, ρ) ∈ {(2^19, 1024), (2^20, 512),
(2^21, 128)}; BFS-SpMV outperforms the work-efficient traditional BFS by up
to 53%, with denser graphs giving larger speedups.

Scaled setup: (2^10, 256), (2^11, 128), (2^12, 32); both schemes modeled on
the KNL descriptor from counted work.  Shape targets: per-iteration curves
cross (traditional peaks on the frontier bulge while SpMV stays flat and
then decays via SlimWork), and the SpMV total beats traditional on the
densest graph with the advantage shrinking as density drops.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.traditional import bfs_top_down
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.perf.costmodel import model_traditional_result
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 16
KNL = get_machine("knl")
GRID = [(10, 128), (11, 64), (12, 16)]  # edgefactor = rho/2


def _compare(scale, ef):
    g = kronecker(scale, ef, seed=99)
    root = int(np.argmax(g.degrees))
    trad = bfs_top_down(g, root)
    t_trad = [t.t_total for t in model_traditional_result(KNL, trad)]
    rep = SlimSell(g, C, g.n)
    _, times, _ = modeled_spmv_run(KNL, rep, "sel-max", root,
                                   slimwork=True, include_dp=False)
    t_spmv = [t.t_total for t in times]
    return g, t_trad, t_spmv


#: Deterministic smoke configuration for the regression gate: both
#: schemes are modeled from counted work, so the speedup ratios and the
#: SpMV totals are exact change detectors for the paper's headline
#: traditional-vs-algebraic comparison.
QUICK = {"grid": [(9, 64), (10, 32), (11, 8)]}


def run_quick(grid=None) -> dict:
    """Modeled Fig-9 totals and speedups at a deterministic smoke scale."""
    grid = QUICK["grid"] if grid is None else grid
    totals = {}
    speedups = {}
    for scale, ef in grid:
        g, t_trad, t_spmv = _compare(scale, ef)
        key = f"2^{scale}-{2 * ef}"
        totals[f"{key}.spmv"] = float(sum(t_spmv))
        totals[f"{key}.trad"] = float(sum(t_trad))
        speedups[key] = float(sum(t_trad) / sum(t_spmv))
    return {
        "workload": {"grid": [list(p) for p in grid], "seed": 99, "C": C,
                     "machine": "knl", "semiring": "sel-max"},
        "modeled_total_s": totals,
        "speedups": speedups,
    }


def test_fig9_knl_vs_traditional(benchmark):
    data = benchmark.pedantic(
        lambda: {f"2^{s}-{2 * e}": _compare(s, e) for s, e in GRID},
        rounds=1, iterations=1)
    payload = {}
    speedups = {}
    for key, (g, t_trad, t_spmv) in data.items():
        kmax = max(len(t_trad), len(t_spmv))
        rows = [[k + 1,
                 t_trad[k] if k < len(t_trad) else "",
                 t_spmv[k] if k < len(t_spmv) else ""] for k in range(kmax)]
        print_table(f"Fig 9 {key} (scaled): modeled per-iteration on KNL [s]",
                    ["iter", "Trad-BFS", "BFS-SpMV SlimSell"], rows)
        payload[key] = {"trad": t_trad, "spmv": t_spmv,
                        "n": g.n, "rho": g.avg_degree}
        speedups[key] = sum(t_trad) / sum(t_spmv)
    save_results("fig09_knl_vs_trad", {"runs": payload, "speedups": speedups})

    keys = list(data)
    print_table("Fig 9 summary: total-time speedup of BFS-SpMV over Trad",
                ["graph", "speedup"], [[k, f"{speedups[k]:.2f}"] for k in keys])
    # Densest graph: SpMV wins (the paper's up-to-53% regime).
    assert speedups[keys[0]] > 1.0
    # Denser graphs entail larger speedups (the paper's headline trend).
    assert speedups[keys[0]] > speedups[keys[2]]
