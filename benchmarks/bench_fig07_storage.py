"""Figure 7 — storage of AL vs Sell-C-σ vs SlimSell across graphs and σ.

Panels reproduced (scaled):

* 7a/7c — Kronecker grid: (log n, ρ) pairs trading density for size, at
  σ ∈ {n, √n} and σ ∈ {n/4, n/8}.
* 7b/7d — real-world proxies, relative sizes.

Shape targets: SlimSell ≈ half of Sell-C-σ everywhere; with large sorting
scope SlimSell is also smaller than AL on Kronecker graphs (the paper's
≈5–10%), and the same sets in for σ ≥ √n on real-world graphs; with small
sorting scope padding can push the chunked formats above AL.
"""

from __future__ import annotations

import numpy as np

from repro.formats.storage import storage_report
from repro.graphs.kronecker import kronecker
from repro.graphs.realworld import REALWORLD_REGISTRY, realworld_proxy

from _common import print_table, save_results

C = 8
# Scaled analog of the paper's 2^k–rho ladder (denser graphs, fewer
# vertices) plus a larger point that reaches the inequality-(3) crossover.
KRON_GRID = [(9, 64), (10, 32), (11, 16), (12, 8), (13, 4), (14, 2), (14, 8)]


def _sigma_values(n):
    return {"n": n, "sqrt(n)": max(1, int(np.sqrt(n))),
            "n/4": max(1, n // 4), "n/8": max(1, n // 8)}


#: Deterministic smoke configuration for the regression gate: storage
#: cell counts are exact integers (format layout, no timing at all), so
#: the committed baseline is a bit-exact change detector for the Table
#: III / Fig 7 accounting.
QUICK = {"grid": [(9, 32), (10, 16), (11, 8)], "seed": 77}


def run_quick(grid=None, seed: int | None = None) -> dict:
    """Exact Fig-7 storage cells at a deterministic smoke scale.

    A reduced Kronecker ladder at σ ∈ {n, √n}: AL / Sell-C-σ / SlimSell
    cells plus the SlimSell-over-AL ratio the paper's crossover argument
    rests on.
    """
    grid = QUICK["grid"] if grid is None else grid
    seed = QUICK["seed"] if seed is None else seed
    cells = {}
    for scale, ef in grid:
        g = kronecker(scale, ef, seed=seed)
        sigma_map = _sigma_values(g.n)
        for label in ("n", "sqrt(n)"):
            rep = storage_report(g, C, sigma_map[label])
            cells[f"{scale}-{ef}|{label}"] = {
                "al": int(rep.al_cells),
                "sell": int(rep.sell_cells),
                "slim": int(rep.slimsell_cells),
                "padding": int(rep.padding_slots),
                "slim_over_al": rep.slimsell_cells / rep.al_cells,
            }
    return {
        "workload": {"grid": [list(p) for p in grid], "seed": seed, "C": C,
                     "sigmas": ["n", "sqrt(n)"]},
        "cells": cells,
    }


def test_fig7_kronecker_grid(benchmark):
    def compute():
        out = {}
        for scale, ef in KRON_GRID:
            g = kronecker(scale, ef, seed=77)
            for label, sigma in _sigma_values(g.n).items():
                rep = storage_report(g, C, sigma)
                out[f"{scale}-{ef}|{label}"] = {
                    "al": rep.al_cells, "sell": rep.sell_cells,
                    "slim": rep.slimsell_cells, "P": rep.padding_slots,
                }
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = []
    for key, v in out.items():
        rows.append([key, v["al"], v["sell"], v["slim"],
                     f"{v['slim'] / v['al']:.3f}", f"{v['slim'] / v['sell']:.3f}"])
    print_table("Fig 7a/7c (scaled): Kronecker storage [cells]",
                ["graph|sigma", "AL", "Sell-C-σ", "SlimSell", "slim/AL",
                 "slim/sell"], rows)
    save_results("fig07_kron_grid", out)

    for key, v in out.items():
        # SlimSell is always the smaller chunked format.
        assert v["slim"] < v["sell"]
    # The SlimSell-vs-AL ratio improves with n (P ≈ ρ̂·C grows sublinearly
    # in n, the paper's graphs at n >= 2^20 sit past the crossover) …
    ratios = {k: v["slim"] / v["al"] for k, v in out.items() if k.endswith("|n")}
    assert ratios["14-8|n"] < ratios["11-16|n"] < ratios["9-64|n"]
    # … and the largest grid point already crosses it (SlimSell < AL).
    assert ratios["14-8|n"] < 1.0
    # Sell-C-σ never beats AL (it stores val *and* col).
    assert all(v["sell"] > v["al"] for v in out.values())


def test_fig7_realworld(benchmark):
    ids = sorted(REALWORLD_REGISTRY)

    def compute():
        out = {}
        for gid in ids:
            g = realworld_proxy(gid, downscale=256, seed=1)
            for label, sigma in _sigma_values(g.n).items():
                rep = storage_report(g, C, sigma)
                out[f"{gid}|{label}"] = {
                    "al": rep.al_cells, "sell": rep.sell_cells,
                    "slim": rep.slimsell_cells,
                    "rel_sell": rep.sell_cells / rep.al_cells,
                    "rel_slim": rep.slimsell_cells / rep.al_cells,
                }
        return out

    out = benchmark.pedantic(compute, rounds=1, iterations=1)
    rows = [[k, f"{v['rel_sell']:.2f}", f"{v['rel_slim']:.2f}"]
            for k, v in out.items()]
    print_table("Fig 7b/7d (scaled): real-world storage relative to AL",
                ["graph|sigma", "Sell-C-σ/AL", "SlimSell/AL"], rows)
    save_results("fig07_realworld", out)

    for gid in ids:
        # σ = n is never worse than σ = n/8 for the chunked formats.
        assert out[f"{gid}|n"]["slim"] <= out[f"{gid}|n/8"]["slim"] * 1.001
        # SlimSell stays within a modest factor of AL at full sort; the
        # paper reports comparable-or-better for σ >= sqrt(n).
        assert out[f"{gid}|n"]["rel_slim"] < 1.35
