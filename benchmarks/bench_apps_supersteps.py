"""Extension bench — §VI: SlimSell beyond BFS (PageRank & betweenness).

The paper's closing claim: algorithms with *identical communication
patterns in each superstep* (PageRank) should benefit from SlimSell even
more than BFS, whose access pattern changes per iteration.  This bench runs
PageRank and Brandes betweenness on the SlimSell operator and measures the
superstep-uniformity claim: PageRank's per-superstep cost is constant,
while BFS's per-iteration work varies by orders of magnitude under
SlimWork.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.betweenness import betweenness_centrality
from repro.apps.pagerank import pagerank
from repro.bfs.operator import SlimSpMV
from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker

from _common import print_table, save_results


def test_pagerank_superstep_uniformity(kron_bench, benchmark):
    g = kron_bench
    rep = SlimSell(g, 8, g.n)
    op = SlimSpMV(rep, "real")
    deg = g.degrees.astype(float)
    x = np.full(g.n, 1.0 / g.n)
    inv = np.where(deg > 0, 1.0 / np.maximum(deg, 1), 0.0)

    # Time 10 PageRank supersteps individually.
    times = []
    for _ in range(10):
        t0 = time.perf_counter()
        x = 0.15 / g.n + 0.85 * op(x * inv)
        times.append(time.perf_counter() - t0)
    cv_pr = float(np.std(times[1:]) / np.mean(times[1:]))

    # Contrast: SlimWork BFS per-iteration work varies hugely.
    root = int(np.argmax(g.degrees))
    res = benchmark.pedantic(
        lambda: BFSSpMV(rep, "tropical", slimwork=True,
                        compute_parents=False).run(root),
        rounds=3, iterations=1)
    lanes = np.array([it.work_lanes for it in res.iterations], dtype=float)
    bfs_spread = float(lanes.max() / max(lanes.min(), 1.0))

    print_table(
        "§VI extension: superstep cost profiles on SlimSell",
        ["algorithm", "supersteps", "cost variation"],
        [["PageRank", 10, f"CV={cv_pr:.2%}"],
         ["BFS + SlimWork", res.n_iterations, f"max/min={bfs_spread:.0f}x"]])
    save_results("apps_supersteps", {
        "pagerank_step_times": times, "pagerank_cv": cv_pr,
        "bfs_lane_series": lanes.tolist(), "bfs_spread": bfs_spread})

    assert cv_pr < 0.5, "PageRank supersteps should be near-uniform"
    assert bfs_spread > 3.0, "SlimWork BFS iterations should vary widely"


def test_betweenness_end_to_end(benchmark):
    g = kronecker(8, 6, seed=12)
    sources = np.arange(0, g.n, 8)
    bc = benchmark.pedantic(
        lambda: betweenness_centrality(g, C=8, sources=sources),
        rounds=1, iterations=1)
    assert bc.shape == (g.n,)
    assert (bc >= 0).all()
    # Hubs carry more shortest paths than the median vertex.
    hub = int(np.argmax(g.degrees))
    assert bc[hub] >= np.median(bc)
    pr = pagerank(g, C=8)
    save_results("apps_betweenness", {
        "bc_hub": float(bc[hub]), "bc_median": float(np.median(bc)),
        "pagerank_hub": float(pr[hub]),
    })
