"""Figure 8 — KNL fine-grained analysis (tropical semiring, C=16).

Per-iteration times on Kronecker graphs for growing (log n, ρ): the paper's
panels (a) n=2^20 with ρ ∈ {16, 32, 64} and (b) n ∈ {2^21, 2^22}.  Scaled to
(11, {8, 16, 32}) and ({12, 13}, ...).  Shape targets: iteration latency
grows with both n and ρ, and the compute time drops after the early
iterations once SlimWork starts skipping settled chunks.
"""

from __future__ import annotations

import numpy as np

from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 16
KNL = get_machine("knl")
GRID_A = [(11, 8), (11, 16), (11, 32)]
GRID_B = [(12, 8), (12, 16), (13, 8)]


def _run(scale, ef):
    g = kronecker(scale, ef, seed=88)
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, C, g.n)
    _, times, total = modeled_spmv_run(KNL, rep, "tropical", root,
                                       slimwork=True, include_dp=False)
    return [t.t_total for t in times], total


#: Deterministic smoke configuration for the regression gate: the
#: (log n, ρ) ladder's modeled SlimWork totals on the KNL descriptor
#: (counted work × cost model, no wall clock).
QUICK = {"grid": [(10, 8), (10, 16), (11, 8)]}


def run_quick(grid=None) -> dict:
    """Modeled Fig-8 totals at a deterministic smoke scale."""
    grid = QUICK["grid"] if grid is None else grid
    totals = {}
    series = {}
    for scale, ef in grid:
        s, total = _run(scale, ef)
        series[f"{scale}-{ef}"] = [float(t) for t in s]
        totals[f"{scale}-{ef}"] = float(total)
    return {
        "workload": {"grid": [list(p) for p in grid], "seed": 88, "C": C,
                     "machine": "knl", "semiring": "tropical"},
        "series": series,
        "modeled_total_s": totals,
    }


def test_fig8_knl_fine_grained(benchmark):
    results = benchmark.pedantic(
        lambda: {f"{s}-{e}": _run(s, e) for s, e in GRID_A + GRID_B},
        rounds=1, iterations=1)
    series = {k: v[0] for k, v in results.items()}
    totals = {k: v[1] for k, v in results.items()}
    kmax = max(len(s) for s in series.values())
    keys = list(series)
    rows = [[k + 1] + [series[key][k] if k < len(series[key]) else ""
                       for key in keys] for k in range(kmax)]
    print_table("Fig 8 (scaled): KNL per-iteration modeled time [s]",
                ["iter"] + keys, rows)
    save_results("fig08_knl", {"series": series, "totals": totals})

    # Latency grows with rho at fixed n …
    assert totals["11-32"] > totals["11-16"] > totals["11-8"]
    # … and with n at fixed rho.
    assert totals["13-8"] > totals["12-8"] > totals["11-8"]
    # KNL secures a drop in compute after the first iterations (§IV-C).
    for key in keys:
        s = series[key]
        assert s[-1] < max(s)
