"""Figure 10 — Trad-BFS on a CPU vs BFS-SpMV with SlimSell on a GPU.

Paper setup: tropical semiring, C=32, Kronecker n=2^20, ρ ∈ {128, 256, 512};
the optimized traditional BFS runs on the Xeon where it is fastest, the
algebraic BFS on the Tesla K80.  "The higher ρ (denser G), the faster
BFS-SpMV is" — dense graphs give the GPU enough SIMD potential to beat the
latency-oriented CPU.

Scaled setup: n=2^11, ρ ∈ {16, 64, 128}.  Shape target: the GPU/CPU total
time ratio improves monotonically with density, with the GPU winning at the
dense end.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.traditional import bfs_top_down
from repro.formats.slimsell import SlimSell
from repro.graphs.kronecker import kronecker
from repro.perf.costmodel import model_traditional_result
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 32
CPU = get_machine("dora")
GPU = get_machine("tesla-k80")
RHOS = [8, 32, 64]  # edgefactors: realized rho ~= 2x


def _compare(ef):
    g = kronecker(11, ef, seed=55)
    root = int(np.argmax(g.degrees))
    trad = bfs_top_down(g, root)
    t_cpu = [t.t_total for t in model_traditional_result(CPU, trad)]
    rep = SlimSell(g, C, g.n)
    _, times, _ = modeled_spmv_run(GPU, rep, "tropical", root,
                                   slimwork=True, include_dp=False)
    t_gpu = [t.t_total for t in times]
    return g, t_cpu, t_gpu


#: Deterministic smoke configuration for the regression gate: the
#: CPU-trad / GPU-SpMV ratios and the GPU totals are modeled from
#: counted work, so the cross-architecture story is gated exactly.
QUICK = {"edgefactors": [8, 32, 64]}


def run_quick(edgefactors=None) -> dict:
    """Modeled Fig-10 totals and CPU/GPU ratios at smoke scale."""
    edgefactors = (QUICK["edgefactors"] if edgefactors is None
                   else edgefactors)
    totals = {}
    ratios = {}
    for ef in edgefactors:
        g, t_cpu, t_gpu = _compare(ef)
        totals[f"ef{ef}.gpu_spmv"] = float(sum(t_gpu))
        totals[f"ef{ef}.cpu_trad"] = float(sum(t_cpu))
        ratios[f"ef{ef}"] = float(sum(t_cpu) / sum(t_gpu))
    return {
        "workload": {"scale": 11, "edgefactors": list(edgefactors),
                     "seed": 55, "C": C, "cpu": "dora", "gpu": "tesla-k80",
                     "semiring": "tropical"},
        "modeled_total_s": totals,
        "cpu_over_gpu": ratios,
    }


def test_fig10_gpu_spmv_vs_cpu_trad(benchmark):
    data = benchmark.pedantic(
        lambda: {ef: _compare(ef) for ef in RHOS}, rounds=1, iterations=1)
    ratios = {}
    payload = {}
    for ef, (g, t_cpu, t_gpu) in data.items():
        kmax = max(len(t_cpu), len(t_gpu))
        rows = [[k + 1,
                 t_cpu[k] if k < len(t_cpu) else "",
                 t_gpu[k] if k < len(t_gpu) else ""] for k in range(kmax)]
        print_table(
            f"Fig 10 rho~{2 * ef} (scaled): per-iteration modeled time [s]",
            ["iter", "Trad-BFS (CPU)", "BFS-SpMV SlimSell (GPU)"], rows)
        ratios[ef] = sum(t_cpu) / sum(t_gpu)
        payload[str(ef)] = {"cpu_trad": t_cpu, "gpu_spmv": t_gpu,
                            "rho": g.avg_degree}
    print_table("Fig 10 summary: CPU-trad / GPU-SpMV total-time ratio",
                ["edgefactor", "ratio (>1 = GPU wins)"],
                [[ef, f"{r:.2f}"] for ef, r in ratios.items()])
    save_results("fig10_gpu_vs_cpu", {"series": payload, "ratios": ratios})

    vals = [ratios[ef] for ef in RHOS]
    # Denser graphs shift the balance toward the GPU (monotone trend)…
    assert vals[-1] > vals[0]
    # …and at the dense end the GPU-side SpMV wins outright.
    assert vals[-1] > 1.0
