#!/usr/bin/env python
"""B-sweep and α-sweep ablation of the direction-optimizing batched BFS.

Runs the Graph500-style workload (Kronecker graph, sampled valid roots,
default engine config: SlimSell C=16, sel-max, SlimWork) over a grid of
batch widths B and Beamer thresholds α, against the all-pull multi-source
engine (PR 2's ``bench_msbfs_batch.py`` kernel) measured at the same batch
widths on the same prebuilt representation.  Every hybrid run is checked
bit-identical (distances and parents) to the all-pull baseline before its
timing is trusted.

The expected shape: direction optimization dominates at small B (push
phases skip the full-graph pull sweeps that batching has not yet
amortized) and tapers as B grows — the headline is the best hybrid (B, α)
point against the *best* all-pull point.

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_mshybrid.json``) that CI uploads
as the perf-trajectory artifact.

Usage::

    python benchmarks/bench_mshybrid.py              # scale 14, 64 roots
    python benchmarks/bench_mshybrid.py --quick      # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import write_bench_json

from repro.bfs.mshybrid import MultiSourceHybridBFS
from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.
QUICK = {"scale": 10, "edgefactor": 16, "nroots": 16,
         "batches": [1, 4], "alphas": [8.0, 14.0]}


def _identical(a, b) -> bool:
    return all(np.array_equal(x.dist, y.dist) and np.array_equal(x.parent, y.parent)
               for x, y in zip(a, b))


def run_sweep(scale: int, edgefactor: float, nroots: int,
              batches: list[int], alphas: list[float], seed: int = 1) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    rep = SlimSell(graph, 16, graph.n)
    build_s = time.perf_counter() - t0

    roots = sample_roots(graph, nroots, seed)

    # Warm the memoized operands (col64, per-semiring val) so every config
    # measures steady-state kernel time, not one-time materialization.
    BFSSpMV(rep, "sel-max", slimwork=True).run(int(roots[0]))

    # All-pull baselines (the PR 2 kernel), one per batch width.
    ref_results = None
    baselines = []
    for B in sorted(set(batches)):
        engine = BFSSpMV(rep, "sel-max", slimwork=True,
                         batch=B if B > 1 else None)
        t1 = time.perf_counter()
        results = engine.run_many(roots)
        kernel_s = time.perf_counter() - t1
        if ref_results is None:
            ref_results = results
        baselines.append({"B": B, "kernel_s": kernel_s})
    assert ref_results is not None
    pull_by_b = {row["B"]: row["kernel_s"] for row in baselines}
    best_pull = min(pull_by_b.values())

    grid = []
    for B in sorted(set(batches)):
        for alpha in alphas:
            engine = MultiSourceHybridBFS(rep, "sel-max", alpha=alpha)
            t1 = time.perf_counter()
            results = []
            for i in range(0, roots.size, B):
                results.extend(engine.run(roots[i:i + B]))
            kernel_s = time.perf_counter() - t1
            grid.append({
                "B": B,
                "alpha": alpha,
                "kernel_s": kernel_s,
                "speedup_vs_allpull_same_B": pull_by_b[B] / kernel_s,
                "speedup_vs_best_allpull": best_pull / kernel_s,
                "identical_to_allpull": _identical(ref_results, results),
            })

    best = max(grid, key=lambda r: r["speedup_vs_best_allpull"])
    return {
        "workload": {
            "scale": scale, "edgefactor": edgefactor,
            "n": graph.n, "m": graph.m, "nroots": int(roots.size),
            "seed": seed, "C": 16, "semiring": "sel-max", "slimwork": True,
            "representation": "slimsell", "build_s": build_s,
        },
        "allpull_baseline": baselines,
        "grid": grid,
        "headline": {
            "best_hybrid": {k: best[k] for k in ("B", "alpha", "kernel_s")},
            "best_allpull_kernel_s": best_pull,
            "speedup": best["speedup_vs_best_allpull"],
            "hybrid_beats_allpull": best["speedup_vs_best_allpull"] > 1.0,
        },
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(f"\n=== Direction-optimizing MS-BFS ablation (scale={w['scale']}, "
          f"edgefactor={w['edgefactor']}, n={w['n']}, m={w['m']}, "
          f"{w['nroots']} roots) ===")
    print("all-pull baseline (PR 2 kernel):")
    for r in payload["allpull_baseline"]:
        print(f"  B={r['B']:3d}  {r['kernel_s']:8.3f} s")
    hdr = (f"{'B':>4s} {'alpha':>7s}  {'kernel s':>9s}  {'vs pull@B':>9s}  "
           f"{'vs best pull':>12s}  identical")
    print(hdr)
    print("-" * len(hdr))
    for r in payload["grid"]:
        print(f"{r['B']:4d} {r['alpha']:7g}  {r['kernel_s']:9.3f}  "
              f"{r['speedup_vs_allpull_same_B']:8.2f}x  "
              f"{r['speedup_vs_best_allpull']:11.2f}x  "
              f"{r['identical_to_allpull']}")
    h = payload["headline"]
    b = h["best_hybrid"]
    print(f"\nheadline: hybrid B={b['B']} alpha={b['alpha']:g} "
          f"({b['kernel_s']:.3f} s) vs best all-pull "
          f"({h['best_allpull_kernel_s']:.3f} s): {h['speedup']:.2f}x")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nroots", type=int, default=64)
    ap.add_argument("--batches", default="1,4,16,64",
                    help="comma-separated batch widths")
    ap.add_argument("--alphas", default="8,14,32,64",
                    help="comma-separated Beamer thresholds")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke configuration (scale 10, 16 roots, "
                         "B in {1,4}, alpha in {8,14})")
    ap.add_argument("--output", default="BENCH_mshybrid.json",
                    help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        scale, nroots = QUICK["scale"], QUICK["nroots"]
        edgefactor = QUICK["edgefactor"]
        batches, alphas = QUICK["batches"], QUICK["alphas"]
    else:
        scale, nroots, edgefactor = args.scale, args.nroots, args.edgefactor
        batches = [int(b) for b in args.batches.split(",")]
        alphas = [float(a) for a in args.alphas.split(",")]

    payload = run_sweep(scale, edgefactor, nroots, batches, alphas,
                        seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    if not all(r["identical_to_allpull"] for r in payload["grid"]):
        print("ERROR: a hybrid run diverged from the all-pull baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
