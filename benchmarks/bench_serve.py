#!/usr/bin/env python
"""Serving-layer ablation: throughput/latency vs max_batch × arrival rate.

One Zipf-popular query stream (Graph500-sampled root pool) is replayed
against the micro-batching server at every (max_batch, arrival-rate)
combination — arrivals on a virtual Poisson clock, kernels measured for
real, cache off so the comparison isolates *batching* (a cache-on row is
reported separately).  ``max_batch=1`` is the per-query single-source
dispatch baseline; the headline is how far adaptive batching beats it in
kernel throughput, and what it costs (or saves, under load: queueing)
in latency.

Every configuration's served answers are verified bit-identical to
direct batched-engine calls before its numbers are trusted.

A second, seed-deterministic ablation sweeps Zipf skew under burst
arrivals (cache on) and records MSHR reuse: ``reuse_rate`` and
``columns_per_query`` per skew, with a hard failure if a duplicate of an
outstanding root ever spawns an extra kernel column.  Those ratios are
pinned exactly by the ``check_regression.py`` gate.

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_serve.json``) that CI uploads as
the perf-trajectory artifact and the bench-gate reads.

Usage::

    python benchmarks/bench_serve.py              # scale 14, 512 queries
    python benchmarks/bench_serve.py --quick      # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import print_table, write_bench_json

from repro.bfs.msbfs import MultiSourceBFS
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker
from repro.serve.server import Server
from repro.serve.workload import (
    poisson_arrivals,
    run_open_loop,
    sample_zipf_roots,
)

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.
QUICK = {
    "scale": 10,
    "edgefactor": 16,
    "nqueries": 192,
    "root_pool": 48,
    "zipf": 1.1,
    "max_batches": [1, 8, 32],
    "rates": [2000.0, float("inf")],
    "zipfs": [0.6, 1.1, 1.5],
}

#: Deadline used by every batched configuration (per-query B=1 ignores it).
MAX_WAIT_S = 0.01


def _rate_key(rate: float) -> str:
    """JSON-safe label for an arrival rate (``inf`` has no JSON float)."""
    return "inf" if np.isinf(rate) else f"{rate:g}"


def _verify_identical(rep, max_batch: int, roots: np.ndarray) -> bool:
    """Served answers == direct engine calls, bit for bit, at this width."""
    uniq = np.unique(roots)
    server = Server(rep, max_batch=max_batch, max_wait=60.0, cache_size=0)
    tickets = [server.submit(int(r), now=0.0) for r in uniq]
    server.drain(now=0.0)
    direct = MultiSourceBFS(rep, "sel-max", slimwork=True).run(uniq)
    return all(
        np.array_equal(t.result().bfs.dist, d.dist)
        and np.array_equal(t.result().bfs.parent, d.parent)
        for t, d in zip(tickets, direct))


def run_zipf_ablation(rep, pool: np.ndarray, nqueries: int,
                      zipfs: list[float], max_batch: int,
                      seed: int = 1) -> dict:
    """MSHR reuse across Zipf skews, under the all-at-once burst.

    Every query arrives at t=0, so each repeat of a root lands while the
    root's first traversal is still pending or (virtually) in flight and
    the MSHR must absorb it.  The invariant gated here is the headline
    bugfix: ``kernel_columns == distinct_roots`` — a duplicate of an
    outstanding root never spawns another frontier column.  Reuse is
    decided by the virtual clock, not wall time, so ``reuse_rate`` and
    ``columns_per_query`` are seed-deterministic and
    ``check_regression.py`` pins them exactly (p99 stays timing-only).
    """
    rows = []
    for s in zipfs:
        roots = sample_zipf_roots(pool, nqueries, s, seed=seed)
        server = Server(rep, max_batch=max_batch, max_wait=MAX_WAIT_S,
                        cache_size=int(pool.size))
        report = run_open_loop(server, roots, np.zeros(nqueries))
        distinct = int(np.unique(roots).size)
        columns = int(sum(server.stats.widths))
        served = report["served"]
        reused = report["mshr_hits"] + report["cache_hits"]
        rows.append({
            "zipf": float(s),
            "distinct_roots": distinct,
            "kernel_columns": columns,
            "columns_per_query": columns / served,
            "mshr_hits": report["mshr_hits"],
            "cache_hits": report["cache_hits"],
            "reuse_rate": reused / served,
            "kernel_p99_ms": report["latency_p99_s"] * 1e3,
        })
    return {
        "max_batch": max_batch,
        "nqueries": nqueries,
        "rows": rows,
        "zero_extra_columns": all(
            r["kernel_columns"] == r["distinct_roots"] for r in rows),
    }


def run_trace_overhead(rep, pool: np.ndarray, nqueries: int, zipf: float,
                       max_batch: int, seed: int = 1) -> dict:
    """Tracing cost and span-tree/latency consistency, gated by CI.

    Two questions:

    * **Disabled-path overhead** — ``tracer=None`` must stay the same
      code path as before tracing existed.  Measured as the per-submit
      wall time of the pure cache-hit path (no kernel, no allocation)
      with the tracer off, divided by the same loop with it on: a
      machine-portable ratio well below 1.0, because the traced loop
      does strictly more work.  If guard-free span work ever leaks onto
      the disabled path the ratio climbs toward 1.0 and the gate trips.
    * **Span/latency consistency** — in a traced run the closed
      ``serve.query`` root spans must sum to the stats' reported
      latencies (both clocks are virtual, so near-exactly); and the
      span-per-query rate is a seed-deterministic change detector for
      the instrumentation surface itself.
    """
    from repro.obs.trace import Tracer

    hot, n, reps = int(pool[0]), 2000, 3

    def per_submit_s(tracer) -> float:
        server = Server(rep, max_batch=max_batch, max_wait=MAX_WAIT_S,
                        cache_size=1, tracer=tracer)
        server.submit(hot, now=0.0)
        server.drain(now=0.0)
        best = float("inf")
        for _ in range(reps):
            t0 = time.perf_counter()
            for i in range(n):
                server.submit(hot, now=1.0 + i * 1e-6)
            best = min(best, time.perf_counter() - t0)
            if tracer is not None:
                tracer.clear()
        return best / n

    disabled = per_submit_s(None)
    enabled = per_submit_s(Tracer())

    # One fully traced burst run (cache off: every query takes the
    # kernel path), checked against its own report.
    roots = sample_zipf_roots(pool, nqueries, zipf, seed=seed)
    tracer = Tracer()
    server = Server(rep, max_batch=max_batch, max_wait=MAX_WAIT_S,
                    cache_size=0, tracer=tracer)
    report = run_open_loop(server, roots, np.zeros(nqueries),
                           params={"zipf": float(zipf), "seed": seed})
    qspans = [s for s in tracer.spans if s.name == "serve.query"]
    span_latency_s = sum(s.duration_s for s in qspans)
    reported_s = report["latency_mean_s"] * (report["served"]
                                             - report["cache_hits"])
    consistent = (
        len(qspans) == nqueries
        and all(s.t_end is not None for s in tracer.spans)
        and abs(span_latency_s - reported_s)
        <= 1e-6 * max(1.0, reported_s))
    return {
        "max_batch": max_batch,
        "submit_us_disabled": disabled * 1e6,
        "submit_us_enabled": enabled * 1e6,
        "disabled_over_enabled": disabled / enabled,
        "spans": len(tracer.spans),
        "spans_per_query": len(tracer.spans) / nqueries,
        "span_latency_s": span_latency_s,
        "reported_latency_s": reported_s,
        "span_latency_consistent": bool(consistent),
    }


def run_sweep(scale: int, edgefactor: float, nqueries: int, root_pool: int,
              zipf: float, max_batches: list[int], rates: list[float],
              zipfs: list[float], seed: int = 1) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    rep = SlimSell(graph, 16, graph.n)
    build_s = time.perf_counter() - t0

    pool = sample_roots(graph, root_pool, seed)
    roots = sample_zipf_roots(pool, nqueries, zipf, seed=seed)
    # Warm the memoized operands (col64, per-semiring val) so every config
    # measures steady-state kernel time, not one-time materialization.
    Server(rep, max_batch=1, cache_size=0).submit(int(pool[0]), now=0.0)

    if 1 not in max_batches:
        raise SystemExit("max_batches must include 1 (the per-query baseline)")
    grid = []
    # Bit-identity depends only on (rep, B, roots): verify once per width,
    # not once per (width, rate).
    identical_by_B = {B: _verify_identical(rep, B, roots)
                      for B in sorted(set(max_batches))}
    identical_all = all(identical_by_B.values())
    for rate in rates:
        arrivals = poisson_arrivals(nqueries, rate, seed=seed)
        base_qps = None
        for B in sorted(set(max_batches)):
            server = Server(rep, max_batch=B, max_wait=MAX_WAIT_S,
                            cache_size=0)
            report = run_open_loop(server, roots, arrivals)
            if B == 1:
                base_qps = report["kernel_throughput_qps"]
            grid.append({
                "rate": _rate_key(rate),
                "B": B,
                "kernel_s": report["kernel_s"],
                "kernel_qps": report["kernel_throughput_qps"],
                "virtual_qps": report["virtual_throughput_qps"],
                "speedup_vs_per_query": (report["kernel_throughput_qps"]
                                         / base_qps),
                "batches": report["batches"],
                "mean_width": report["mean_batch_width"],
                "mshr_hits": report["mshr_hits"],
                "latency_p50_ms": report["latency_p50_s"] * 1e3,
                "latency_p95_ms": report["latency_p95_s"] * 1e3,
                "latency_p99_ms": report["latency_p99_s"] * 1e3,
                "identical_to_direct": bool(identical_by_B[B]),
            })

    # Cache-on reference row (widest batch, burst arrivals): how much of
    # the Zipf stream the LRU absorbs, on top of batching.
    wide = max(max_batches)
    server = Server(rep, max_batch=wide, max_wait=MAX_WAIT_S,
                    cache_size=root_pool)
    cached = run_open_loop(server, roots, np.zeros(nqueries))
    cache_row = {
        "B": wide,
        "cache_size": root_pool,
        "hit_rate": server.cache.stats.hit_rate,
        # Under the burst every repeat lands while its root is still
        # outstanding, so reuse shows up as MSHR hits, not cache hits
        # (results only become cache-visible at virtual completion).
        "mshr_hits": cached["mshr_hits"],
        "kernel_s": cached["kernel_s"],
        "kernel_qps": cached["kernel_throughput_qps"],
        "virtual_qps": cached["virtual_throughput_qps"],
    }

    mshr_zipf = run_zipf_ablation(rep, pool, nqueries, zipfs, wide,
                                  seed=seed)
    trace = run_trace_overhead(rep, pool, nqueries, zipf, wide, seed=seed)

    best = max(grid, key=lambda r: r["speedup_vs_per_query"])
    return {
        "workload": {
            "scale": scale, "edgefactor": edgefactor,
            "n": graph.n, "m": graph.m, "nqueries": nqueries,
            "root_pool": int(pool.size), "zipf": zipf, "seed": seed,
            "C": 16, "semiring": "sel-max", "max_wait_s": MAX_WAIT_S,
            "build_s": build_s,
        },
        "grid": grid,
        "cache_reference": cache_row,
        "mshr_zipf": mshr_zipf,
        "trace": trace,
        "best_speedup_vs_per_query": best["speedup_vs_per_query"],
        "best_point": {"rate": best["rate"], "B": best["B"]},
        "identical_to_direct": bool(identical_all),
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(f"\n=== Serving-layer ablation (scale={w['scale']}, n={w['n']}, "
          f"m={w['m']}, {w['nqueries']} queries, zipf s={w['zipf']:g} over "
          f"{w['root_pool']} roots) ===")
    rows = [[r["rate"], r["B"],
             r["mean_width"], r["kernel_qps"], r["speedup_vs_per_query"],
             r["virtual_qps"], r["latency_p50_ms"], r["latency_p99_ms"],
             r["identical_to_direct"]]
            for r in payload["grid"]]
    print_table(
        "throughput/latency vs (arrival rate, max_batch)",
        ["rate/s", "B", "width", "kernel q/s", "speedup", "wall q/s",
         "p50 ms", "p99 ms", "identical"],
        rows)
    c = payload["cache_reference"]
    print(f"\ncache-on reference (B={c['B']}, {c['cache_size']} entries): "
          f"hit rate {c['hit_rate']:.1%}, {c['mshr_hits']} MSHR hits, "
          f"wall {c['virtual_qps']:.0f} q/s")
    mz = payload["mshr_zipf"]
    print_table(
        f"MSHR reuse vs Zipf skew (burst arrivals, B={mz['max_batch']})",
        ["zipf s", "distinct", "columns", "cols/query", "mshr hits",
         "reuse", "kernel p99 ms"],
        [[r["zipf"], r["distinct_roots"], r["kernel_columns"],
          r["columns_per_query"], r["mshr_hits"], r["reuse_rate"],
          r["kernel_p99_ms"]] for r in mz["rows"]])
    print(f"zero extra columns for outstanding roots: "
          f"{mz['zero_extra_columns']}")
    t = payload["trace"]
    print(f"\ntracing: submit {t['submit_us_disabled']:.2f}us off vs "
          f"{t['submit_us_enabled']:.2f}us on "
          f"(off/on {t['disabled_over_enabled']:.2f}), "
          f"{t['spans_per_query']:.2f} spans/query, span/latency sums "
          f"consistent: {t['span_latency_consistent']}")
    b = payload["best_point"]
    print(f"best point: rate={b['rate']}, max_batch={b['B']} -> "
          f"{payload['best_speedup_vs_per_query']:.2f}x the per-query "
          f"dispatch throughput")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nqueries", type=int, default=512)
    ap.add_argument("--root-pool", type=int, default=128)
    ap.add_argument("--zipf", type=float, default=1.1)
    ap.add_argument("--max-batches", default="1,8,32,64",
                    help="comma-separated widths (must include 1)")
    ap.add_argument("--rates", default="5000,20000,inf",
                    help="comma-separated arrival rates in queries/s")
    ap.add_argument("--zipfs", default="0.6,1.1,1.5",
                    help="comma-separated Zipf skews for the MSHR ablation")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke configuration")
    ap.add_argument("--output", default="BENCH_serve.json",
                    help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        cfg = dict(QUICK)
    else:
        cfg = {
            "scale": args.scale, "edgefactor": args.edgefactor,
            "nqueries": args.nqueries, "root_pool": args.root_pool,
            "zipf": args.zipf,
            "max_batches": [int(b) for b in args.max_batches.split(",")],
            "rates": [float(r) for r in args.rates.split(",")],
            "zipfs": [float(s) for s in args.zipfs.split(",")],
        }

    payload = run_sweep(cfg["scale"], cfg["edgefactor"], cfg["nqueries"],
                        cfg["root_pool"], cfg["zipf"], cfg["max_batches"],
                        cfg["rates"], cfg["zipfs"], seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    if not payload["identical_to_direct"]:
        print("ERROR: a served configuration diverged from the direct "
              "engine calls", file=sys.stderr)
        return 1
    if not payload["mshr_zipf"]["zero_extra_columns"]:
        print("ERROR: a duplicate of an outstanding root spawned an extra "
              "kernel column (MSHR coalescing broke)", file=sys.stderr)
        return 1
    if not payload["trace"]["span_latency_consistent"]:
        print("ERROR: traced span durations diverged from the reported "
              "latencies (span tree is lying about the run)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
