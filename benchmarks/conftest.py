"""Benchmark-suite fixtures: shared graphs and machine handles.

Benches run at CI-friendly scales (n = 2^12 … 2^14, the paper uses up to
2^28); every workload builder takes explicit scale parameters so larger
runs only need a constant change.
"""

from __future__ import annotations

import pytest

from repro.graphs.erdos_renyi import erdos_renyi_nm
from repro.graphs.kronecker import kronecker


@pytest.fixture(scope="session")
def kron_bench():
    """Kronecker workload, scaled analog of the paper's n=2^23, ρ̄=16."""
    return kronecker(12, 8, seed=2023)


@pytest.fixture(scope="session")
def kron_dense():
    """Dense Kronecker workload (Fig 1 / Fig 9 regime: ρ in the hundreds)."""
    return kronecker(11, 64, seed=2023)


@pytest.fixture(scope="session")
def er_bench():
    """Erdős–Rényi workload with ρ̄ ≈ 16 (Fig 5c / Fig 6b regime)."""
    n = 1 << 12
    return erdos_renyi_nm(n, n * 8, seed=2023)
