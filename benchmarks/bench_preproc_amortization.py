"""§IV-D — preprocessing analysis: sort/build amortization over BFS runs.

Paper numbers (Kronecker n=2^24): full sorting ≈0.95 s ≈ 21% of a single
BFS run; 10 runs bring sorting under 2% of total runtime; on n=2^18, 20
runs bring full preprocessing under 5%.  Scaled here to the bench graph;
the shape target is the amortization curve, not the absolute fractions.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.perf.harness import amortization_report

from _common import print_table, save_results


def test_preprocessing_amortization(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))

    rep = benchmark.pedantic(lambda: SlimSell(g, 8, g.n),
                             rounds=3, iterations=1)
    runner = BFSSpMV(rep, "tropical", slimwork=True)
    report = amortization_report(rep, lambda: runner.run(root), repeats=3)

    runs = [1, 2, 5, 10, 20, 50]
    rows = [[k, f"{report.sort_fraction(k):.3%}",
             f"{report.preprocess_fraction(k):.3%}"] for k in runs]
    print_table(
        "§IV-D (scaled): preprocessing amortization",
        ["BFS runs", "sort / total", "build / total"], rows)
    save_results("preproc_amortization", {
        "sort_time_s": report.sort_time_s,
        "build_time_s": report.build_time_s,
        "bfs_time_s": report.bfs_time_s,
        "sort_fraction": {k: report.sort_fraction(k) for k in runs},
        "preprocess_fraction": {k: report.preprocess_fraction(k) for k in runs},
    })

    # Amortization monotone in the number of runs.
    fracs = [report.preprocess_fraction(k) for k in runs]
    assert all(b < a for a, b in zip(fracs, fracs[1:]))
    # A bounded number of runs drives the sort below 2% (paper: 10 runs).
    assert report.runs_until_sort_below(0.02) < 10_000
