"""Figure 5 — CPU analysis (Dora, C=8): σ sweeps, semirings, SlimWork.

Panels reproduced (scaled from n=2^23 to n=2^12):

* 5a — Kronecker, DP, omp-static: total time vs log σ per semiring.
* 5b — Kronecker, No-DP, omp-dynamic.
* 5c — ER, DP, omp-dynamic: σ has far less impact on uniform degrees.
* 5d — per-iteration time with and without SlimWork.

Shape targets: performance flat for σ < C and improving as σ → n on the
power-law graph; semiring deltas small in the MV itself; sel-max avoids the
DP cost; SlimWork's late iterations are nearly free while "No SlimWork"
stays flat.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.perf.costmodel import model_bfs_result
from repro.semirings import SEMIRINGS
from repro.vec.machine import get_machine

from _common import modeled_spmv_run, print_table, save_results

C = 8
SIGMAS = [1, 2, 4, 8, 16, 64, 256, 1024, 4096]

#: Deterministic smoke configuration for the regression gate
#: (``benchmarks/check_regression.py``): modeled totals are pure functions
#: of (graph, σ, cost model) — no wall clock — so the committed baseline
#: pins the Dora σ-sweep and the SlimWork ablation exactly.
QUICK = {"scale": 9, "edgefactor": 32, "seed": 2023,
         "sigmas": [1, 64, 512]}


def run_quick(scale: int | None = None, edgefactor: float | None = None,
              seed: int | None = None) -> dict:
    """Modeled Fig-5 numbers at a deterministic smoke scale.

    One Kronecker graph on the Dora descriptor: the panel-(a) σ sweep
    (DP, omp-static) per semiring plus the panel-(d) SlimWork on/off
    totals, flattened into the ``modeled_total_s`` dict the bench-gate
    pins point by point.
    """
    from repro.graphs.kronecker import kronecker

    scale = QUICK["scale"] if scale is None else scale
    edgefactor = QUICK["edgefactor"] if edgefactor is None else edgefactor
    seed = QUICK["seed"] if seed is None else seed
    sigmas = QUICK["sigmas"]
    g = kronecker(scale, edgefactor, seed=seed)
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    totals = {}
    for sigma in sigmas:
        rep = SlimSell(g, C, sigma)
        for name in SEMIRINGS:
            _, _, total = modeled_spmv_run(dora, rep, name, root,
                                           sched="static", include_dp=True)
            totals[f"kron_dp_static.{name}.sigma{sigma}"] = float(total)
    rep = SlimSell(g, C, g.n)
    for label, slim in (("slimwork_off", False), ("slimwork_on", True)):
        _, _, total = modeled_spmv_run(dora, rep, "tropical", root,
                                       sched="static", include_dp=False,
                                       slimwork=slim)
        totals[f"fig5d.{label}"] = float(total)
    return {
        "workload": {"scale": scale, "edgefactor": edgefactor, "seed": seed,
                     "n": g.n, "m": g.m, "root": root, "C": C,
                     "machine": "dora", "sigmas": sigmas},
        "modeled_total_s": totals,
    }


def _sweep(machine, g, root, sched, include_dp):
    out = {name: [] for name in SEMIRINGS}
    for sigma in SIGMAS:
        rep = SlimSell(g, C, sigma)
        for name in SEMIRINGS:
            _, _, total = modeled_spmv_run(
                machine, rep, name, root, sched=sched, include_dp=include_dp)
            out[name].append(total)
    return out


def test_fig5a_kronecker_dp_static(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    sweep = benchmark.pedantic(
        lambda: _sweep(dora, g, root, "static", include_dp=True),
        rounds=1, iterations=1)
    rows = [[s] + [sweep[name][i] for name in SEMIRINGS]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 5a (scaled): Kronecker, DP, omp-s — modeled total [s]",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("fig05a_kron_dp_static", {"sigmas": SIGMAS, **sweep})
    for name, series in sweep.items():
        # σ < C only reorders rows inside a chunk: no improvement yet.
        assert series[0] / series[2] < 1.25, name
        # Full sorting beats no sorting clearly on the power-law graph.
        assert series[-1] < 0.8 * series[0], name
    # sel-max avoids DP: at full sort it stays within a few percent of the
    # cheapest DP-paying semiring although its chunk post-processing is the
    # heaviest (the paper's "only major difference comes with DP").
    assert sweep["sel-max"][-1] <= 1.10 * min(
        sweep[n][-1] for n in ("tropical", "real", "boolean"))


def test_fig5b_kronecker_nodp_dynamic(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    sweep = benchmark.pedantic(
        lambda: _sweep(dora, g, root, "dynamic", include_dp=False),
        rounds=1, iterations=1)
    rows = [[s] + [sweep[name][i] for name in SEMIRINGS]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 5b (scaled): Kronecker, No-DP, omp-d — modeled total [s]",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("fig05b_kron_nodp_dynamic", {"sigmas": SIGMAS, **sweep})
    # Without DP the semirings differ only in post-processing: small deltas.
    finals = [sweep[name][-1] for name in SEMIRINGS]
    assert max(finals) / min(finals) < 1.35


def test_fig5c_er_dp_dynamic(er_bench, benchmark):
    g = er_bench
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    sweep = benchmark.pedantic(
        lambda: _sweep(dora, g, root, "dynamic", include_dp=True),
        rounds=1, iterations=1)
    rows = [[s] + [sweep[name][i] for name in SEMIRINGS]
            for i, s in enumerate(SIGMAS)]
    print_table("Fig 5c (scaled): ER, DP, omp-d — modeled total [s]",
                ["sigma"] + list(SEMIRINGS), rows)
    save_results("fig05c_er_dp_dynamic", {"sigmas": SIGMAS, **sweep})
    # Uniform degrees: sorting barely helps (§IV-A5) — much flatter than
    # the Kronecker sweep.
    for name, series in sweep.items():
        assert series[0] / series[-1] < 1.35, name


def test_fig5d_slimwork_per_iteration(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    dora = get_machine("dora")
    rep = SlimSell(g, C, g.n)
    off = BFSSpMV(rep, "tropical", counting=True).run(root)
    on = benchmark.pedantic(
        lambda: BFSSpMV(rep, "tropical", counting=True, slimwork=True).run(root),
        rounds=3, iterations=1)
    t_off = [t.t_total for t in model_bfs_result(dora, off)]
    t_on = [t.t_total for t in model_bfs_result(dora, on)]
    rows = [[k + 1,
             t_off[k] if k < len(t_off) else "",
             t_on[k] if k < len(t_on) else ""]
            for k in range(max(len(t_off), len(t_on)))]
    print_table("Fig 5d (scaled): per-iteration modeled time [s]",
                ["iter", "No SlimWork", "SlimWork"], rows)
    save_results("fig05d_slimwork", {"no_slimwork": t_off, "slimwork": t_on})
    # No SlimWork: flat after the first iteration; SlimWork: decaying tail.
    assert np.std(t_off[:-1]) / np.mean(t_off[:-1]) < 0.05
    assert t_on[-1] < 0.5 * max(t_on)
    assert sum(t_on) < sum(t_off)
