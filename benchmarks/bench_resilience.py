#!/usr/bin/env python
"""Resilience ablation: goodput and recovery cost vs injected fault rate.

Two sections, both fully deterministic (virtual clocks, seeded fault
streams, modeled service/recovery times — no wall-clock timing anywhere),
so every number is an exact change detector the ``check_regression.py``
gate pins with ``timing=False`` points:

* **serving tier** — one Poisson×Zipf query stream with a per-query
  deadline is replayed against the micro-batching server at increasing
  kernel-fault rates (transient + permanent + straggler, one seeded
  stream).  Kernel time on the virtual timeline comes from a linear
  ``service_model`` so completion times — hence timeouts, breaker trips,
  goodput — are machine-independent.  Reported per rate: goodput
  (in-deadline served fraction), timeout/failed rates, batch retries per
  query, sheds, and breaker opens.
* **distributed tier** — the 1D batched sweep under rank failures, for a
  grid of checkpoint intervals: modeled fault overhead (recovery replay +
  checkpoint premiums) as a fraction of the fault-free modeled time.  The
  tradeoff the model exists to expose: frequent checkpoints pay a steady
  premium, no checkpoints pay recompute-from-root on every failure.

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_resilience.json``) that CI uploads
as an artifact and the bench-gate reads.

Usage::

    python benchmarks/bench_resilience.py            # full configuration
    python benchmarks/bench_resilience.py --quick    # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys

from _common import print_table, write_bench_json

from repro.dist import DistFaultModel, bfs_dist_1d, get_network
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker
from repro.serve.faults import CircuitBreaker, FaultPlan
from repro.serve.server import Server
from repro.serve.workload import (
    poisson_arrivals,
    run_open_loop,
    sample_zipf_roots,
)
from repro.vec.machine import get_machine

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.  Everything here is deterministic, so
#: quick and full runs differ only in scale.
QUICK = {
    "scale": 10,
    "edgefactor": 16,
    "nqueries": 256,
    "root_pool": 96,
    "zipf": 0.8,
    "rate": 40000.0,
    "deadline_s": 0.008,
    "fault_rates": [0.0, 0.05, 0.15, 0.3],
    "dist_ranks": 8,
    "dist_batch": 8,
    "failure_probs": [0.01, 0.05],
    "checkpoint_intervals": [None, 1, 4],
}

def service_model(width: int) -> float:
    """Virtual kernel seconds for a width-w batch: a base dispatch cost
    plus a per-column term.  Close enough to the real engines' shape for
    the batching dynamics while making every completion time exact."""
    return 5e-4 + 1e-4 * width


def run_serve_sweep(rep, pool, nqueries: int, zipf: float, rate: float,
                    deadline_s: float, fault_rates: list[float],
                    seed: int = 1) -> dict:
    """Goodput / timeout / retry curves vs injected kernel-fault rate.

    Each rate ``f`` maps to a plan with transient faults at ``f``,
    permanent faults at ``f/4`` (retries can save most batches, not all),
    and stragglers at ``f`` (4x kernel time) — one seeded stream, so the
    whole curve is reproducible bit for bit.
    """
    roots = sample_zipf_roots(pool, nqueries, zipf, seed=seed)
    arrivals = poisson_arrivals(nqueries, rate, seed=seed)
    rows = []
    for f in fault_rates:
        faults = None
        if f > 0:
            faults = FaultPlan(transient_rate=f, permanent_rate=f / 4,
                               straggler_rate=f, seed=seed)
        server = Server(rep, max_batch=8, max_wait=1e-3,
                        cache_size=int(pool.size), faults=faults,
                        service_model=service_model,
                        breaker=CircuitBreaker(failure_threshold=3,
                                               cooldown_s=5e-3))
        report = run_open_loop(server, roots, arrivals,
                               deadline=deadline_s)
        n = report["nqueries"]
        rows.append({
            "fault_rate": float(f),
            "goodput": report["served"] / n,
            "timeout_rate": report["timeouts"] / n,
            "failed_rate": report["failed"] / n,
            "shed_rate": report["sheds"] / n,
            "retries_per_query": report["retries"] / n,
            "failed_batches": report["failed_batches"],
            "breaker_opens": report["breaker_opens"],
            "served": report["served"],
            "timeouts": report["timeouts"],
            "failed": report["failed"],
            "sheds": report["sheds"],
            "retries": report["retries"],
        })
    return {
        "nqueries": nqueries,
        "rate": rate,
        "deadline_s": deadline_s,
        "max_batch": 8,
        "rows": rows,
    }


def run_dist_sweep(rep, ranks: int, batch: int,
                   failure_probs: list[float],
                   checkpoint_intervals: list[int | None],
                   seed: int = 1) -> dict:
    """Modeled resilience overhead vs (failure prob × checkpoint interval).

    Same seed across the interval column, so every cell of a row sees the
    *same* failure pattern and the comparison isolates recovery depth vs
    checkpoint premium.
    """
    from repro.dist.partition import Partition1D

    machine = get_machine("knl")
    network = get_network("cray-aries")
    part = Partition1D.balanced(rep.cl, ranks)
    roots = list(range(batch))
    base = bfs_dist_1d(rep, roots, part, machine, network, batch=batch)
    rows = []
    for p in failure_probs:
        for interval in checkpoint_intervals:
            model = DistFaultModel(rank_failure_prob=p,
                                   checkpoint_interval=interval, seed=seed)
            res = bfs_dist_1d(rep, roots, part, machine, network,
                              batch=batch, faults=model)
            rows.append({
                "rank_failure_prob": float(p),
                "checkpoint_interval": interval,
                "fault_overhead_s": res.fault_overhead_s,
                "overhead_ratio": (res.fault_overhead_s
                                   / base.modeled_total_s),
                "modeled_total_s": res.modeled_total_s,
            })
    return {
        "ranks": ranks,
        "batch": batch,
        "network": network.name,
        "machine": machine.name,
        "base_modeled_total_s": base.modeled_total_s,
        "rows": rows,
    }


def run_sweep(scale: int, edgefactor: float, nqueries: int, root_pool: int,
              zipf: float, rate: float, deadline_s: float,
              fault_rates: list[float], dist_ranks: int, dist_batch: int,
              failure_probs: list[float],
              checkpoint_intervals: list[int | None],
              seed: int = 1) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    rep = SlimSell(graph, 16, graph.n)
    pool = sample_roots(graph, root_pool, seed)
    serve = run_serve_sweep(rep, pool, nqueries, zipf, rate, deadline_s,
                            fault_rates, seed=seed)
    dist = run_dist_sweep(rep, dist_ranks, dist_batch, failure_probs,
                          checkpoint_intervals, seed=seed)
    return {
        "workload": {
            "scale": scale, "edgefactor": edgefactor,
            "n": graph.n, "m": graph.m, "nqueries": nqueries,
            "root_pool": int(pool.size), "zipf": zipf, "rate": rate,
            "deadline_s": deadline_s, "seed": seed, "C": 16,
            "semiring": "sel-max",
        },
        "serve": serve,
        "dist": dist,
        "deterministic": True,
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(f"\n=== Resilience ablation (scale={w['scale']}, n={w['n']}, "
          f"m={w['m']}, {w['nqueries']} queries @ {w['rate']:g}/s, "
          f"deadline {w['deadline_s'] * 1e3:g} ms) ===")
    sv = payload["serve"]
    print_table(
        f"serving tier vs kernel-fault rate (B={sv['max_batch']})",
        ["fault", "goodput", "timeout", "failed", "shed", "retries/q",
         "bad batches", "breaker opens"],
        [[r["fault_rate"], r["goodput"], r["timeout_rate"],
          r["failed_rate"], r["shed_rate"], r["retries_per_query"],
          r["failed_batches"], r["breaker_opens"]]
         for r in sv["rows"]])
    d = payload["dist"]
    print_table(
        f"dist tier: overhead vs checkpoint interval (P={d['ranks']}, "
        f"B={d['batch']}, {d['network']})",
        ["p(fail)", "ckpt every", "overhead ms", "share of base"],
        [[r["rank_failure_prob"],
          "never" if r["checkpoint_interval"] is None
          else r["checkpoint_interval"],
          r["fault_overhead_s"] * 1e3, r["overhead_ratio"]]
         for r in d["rows"]])


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nqueries", type=int, default=768)
    ap.add_argument("--root-pool", type=int, default=128)
    ap.add_argument("--zipf", type=float, default=0.8)
    ap.add_argument("--rate", type=float, default=40000.0)
    ap.add_argument("--deadline", type=float, default=0.008,
                    help="per-query deadline in seconds")
    ap.add_argument("--fault-rates", default="0,0.05,0.15,0.3",
                    help="comma-separated kernel-fault rates")
    ap.add_argument("--dist-ranks", type=int, default=16)
    ap.add_argument("--dist-batch", type=int, default=8)
    ap.add_argument("--failure-probs", default="0.01,0.05",
                    help="comma-separated per-rank failure probabilities")
    ap.add_argument("--checkpoint-intervals", default="never,1,4",
                    help="comma-separated intervals ('never' = no ckpt)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke configuration")
    ap.add_argument("--output", default="BENCH_resilience.json",
                    help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        cfg = dict(QUICK)
    else:
        cfg = {
            "scale": args.scale, "edgefactor": args.edgefactor,
            "nqueries": args.nqueries, "root_pool": args.root_pool,
            "zipf": args.zipf, "rate": args.rate,
            "deadline_s": args.deadline,
            "fault_rates": [float(f) for f in args.fault_rates.split(",")],
            "dist_ranks": args.dist_ranks,
            "dist_batch": args.dist_batch,
            "failure_probs": [float(p)
                              for p in args.failure_probs.split(",")],
            "checkpoint_intervals": [
                None if k == "never" else int(k)
                for k in args.checkpoint_intervals.split(",")],
        }

    payload = run_sweep(cfg["scale"], cfg["edgefactor"], cfg["nqueries"],
                        cfg["root_pool"], cfg["zipf"], cfg["rate"],
                        cfg["deadline_s"], cfg["fault_rates"],
                        cfg["dist_ranks"], cfg["dist_batch"],
                        cfg["failure_probs"], cfg["checkpoint_intervals"],
                        seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    # Sanity: the fault-free row must be perfect (bit-identity guarantee).
    clean = payload["serve"]["rows"][0]
    if clean["fault_rate"] == 0.0 and (
            clean["failed"] or clean["retries"] or clean["sheds"]):
        print("ERROR: the fault-free configuration failed or retried "
              "queries", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
