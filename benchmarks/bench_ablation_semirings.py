"""Ablation — semiring cost anatomy (§IV-A2, "Differences between Semirings").

The paper observes that the inner chunk loop is identical across semirings
(two vector instructions) and only the frontier-derivation post-processing
differs; sel-max pays the most per chunk but skips the DP transformation.
This bench decomposes counted instructions into inner-loop vs post-processing
vs skip-checking and verifies the paper's accounting.
"""

from __future__ import annotations

import numpy as np

from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from repro.semirings import SEMIRINGS

from _common import print_table, save_results

INNER = {"GATHER"}  # common inner-loop markers
POST_ONLY = {"NOT", "SKIPCHK"}


def test_semiring_instruction_anatomy(kron_bench, benchmark):
    g = kron_bench
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, 8, g.n)

    def run_all():
        out = {}
        for name in SEMIRINGS:
            res = BFSSpMV(rep, name, counting=True, slimwork=True,
                          compute_parents=False).run(root)
            out[name] = res
        return out

    runs = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = []
    payload = {}
    per_layer = {}
    for name, res in runs.items():
        tot = res.total_counters()
        layers = sum(it.work_lanes for it in res.iterations) // 8
        chunks = sum(it.chunks_processed for it in res.iterations)
        # Inner loop: gathers happen once per processed column layer.
        inner = tot.instructions["GATHER"]
        assert inner == layers, name
        post = tot.total_instructions - 6 * layers - tot.instructions.get(
            "SKIPCHK", 0)  # 6 = col load + CMP + BLEND + gather + 2 compute
        per_layer[name] = tot.total_instructions / layers
        rows.append([name, res.n_iterations, layers, chunks,
                     tot.total_instructions, post, f"{post / chunks:.1f}"])
        payload[name] = {
            "iterations": res.n_iterations, "layers": layers,
            "chunks": chunks, "instructions": tot.total_instructions,
            "post_instructions": post, "post_per_chunk": post / chunks,
            "words": tot.total_words,
        }
    print_table(
        "Ablation: instruction anatomy per semiring (SlimSell, C=8)",
        ["semiring", "iters", "layers", "chunks", "instr", "post-instr",
         "post/chunk"], rows)
    save_results("ablation_semirings", payload)

    # The paper's ordering of post-processing cost: tropical (a store)
    # < sel-max / boolean < real (the most vector ops per chunk).
    post_pc = {k: v["post_per_chunk"] for k, v in payload.items()}
    assert post_pc["tropical"] < min(post_pc["boolean"], post_pc["sel-max"],
                                     post_pc["real"])
    assert post_pc["real"] >= post_pc["boolean"]
    # Inner-loop dominance: per-layer instruction counts within ~2x across
    # semirings (the "negligible differences" claim, at counted granularity).
    assert max(per_layer.values()) / min(per_layer.values()) < 2.0
