"""Table II — work complexity of BFS schemes, analytic and measured.

Evaluates every Table II bound at the benchmark graph's parameters and
cross-checks the "this work" bound W = O(Dn + Dm + D·C·ρ̂) against the
engine's actually-counted padded work, plus Eq. (1)/(2) corollaries.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.complexity import (
    work_bound_er,
    work_bound_general,
    work_bound_powerlaw,
    work_table,
)
from repro.bfs.spmv import BFSSpMV
from repro.formats.slimsell import SlimSell
from _common import print_table, save_results


def test_table2_bounds_vs_measured(kron_bench, er_bench, benchmark):
    g = kron_bench
    C = 8
    root = int(np.argmax(g.degrees))
    rep = SlimSell(g, C, sigma=g.n)
    runner = BFSSpMV(rep, "tropical")
    res = benchmark.pedantic(lambda: runner.run(root), rounds=3, iterations=1)

    D = res.n_iterations
    measured_work = sum(it.work_lanes + g.n for it in res.iterations)
    wt = work_table(n=g.n, m=2 * g.m, D=D, C=C, rho_max=g.max_degree)
    rows = [[scheme, f"{w:.3e}"] for scheme, w in sorted(wt.items())]
    rows.append(["measured (padded lanes + n, per iter, summed)",
                 f"{measured_work:.3e}"])
    print_table("Table II (evaluated at the Kronecker bench graph)",
                ["scheme", "W"], rows)

    bound = work_bound_general(g.n, 2 * g.m, D, C, g.max_degree)
    assert measured_work <= bound, "measured work exceeds the paper's bound"

    # Eq. (2): power-law corollary dominates the measured work too.
    eq2 = work_bound_powerlaw(g.n, 2 * g.m, D, C, alpha=g.avg_degree, beta=2.0)
    # Eq. (1) on the ER graph.
    er = er_bench
    rep_er = SlimSell(er, C, sigma=er.n)
    res_er = BFSSpMV(rep_er, "tropical").run(int(np.argmax(er.degrees)))
    D_er = res_er.n_iterations
    measured_er = sum(it.work_lanes + er.n for it in res_er.iterations)
    eq1 = work_bound_er(er.n, 2 * er.m, D_er, C, p=2 * er.m / (er.n * (er.n - 1)))
    assert measured_er <= eq1 * 4  # constants: bound within a small factor

    save_results("table2_work", {
        "params": {"n": g.n, "m2": 2 * g.m, "D": D, "C": C,
                   "rho_max": g.max_degree},
        "bounds": wt,
        "measured_kron": measured_work,
        "general_bound": bound,
        "eq2_powerlaw_bound": eq2,
        "er": {"n": er.n, "D": D_er, "measured": measured_er, "eq1": eq1},
    })
