#!/usr/bin/env python
"""Capacity planning: the serve workload priced by the distributed models.

The planner's headline question — how many ranks, on which interconnect,
at what batch width sustain X queries/s with p99 ≤ Y — swept end to end:
one seed-determined Poisson×Zipf query stream replayed through the real
micro-batching server (batcher, MSHR, FIFO queueing on the virtual
clock) while every dispatched batch is charged the §VI 1D distributed
model's union-sweep time (slowest-rank local SpMM + per-layer allgather
on the network preset).  Three sections:

* **capacity grid** — rank count × {Cray Aries, 10 GbE} × max_batch
  against a ladder of (qps, p99) targets; reported per target: how many
  configurations are feasible and the cheapest one (fewest ranks, then
  the cheaper network, then the narrower batch).  The expected shape:
  low qps is feasible on one rank of anything, high qps forces multiple
  ranks on Aries, and multi-rank Ethernet drowns in per-layer allgather
  latency;
* **checkpoint policy** — the same workload at a per-iteration rank
  failure probability, sweeping checkpoint intervals: the planner picks
  the interval minimizing modeled p99 (frequent checkpoints pay a steady
  premium, none pay recompute-from-root on every failure);
* **heterogeneous placement** — a mixed cluster (three full-speed KNLs
  plus one derated to 0.4×), weighted
  :func:`repro.dist.partition.machine_weights` bands vs uniform bands,
  end to end through the dist models: weighted placement must win both
  the modeled pool sweep and the served p99.

Everything runs on virtual clocks from seeded streams — no wall-clock
timing anywhere — so every number is an exact change detector the
``check_regression.py`` gate pins with ``timing=False`` points.

Usage::

    python benchmarks/bench_capacity.py            # full configuration
    python benchmarks/bench_capacity.py --quick    # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys

from _common import print_table, write_bench_json

from repro.graphs.kronecker import kronecker
from repro.serve.plan import compare_placement, plan_capacity

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.  Everything here is deterministic, so
#: quick and full runs differ only in scale.
QUICK = {
    "scale": 13,
    "edgefactor": 32,
    "targets": [(20000.0, 0.0008), (80000.0, 0.0008), (160000.0, 0.0008)],
    "ranks": [1, 2, 4, 8],
    "max_batches": [8, 32],
    "nqueries": 384,
    "root_pool": 96,
    "zipf": 0.6,
    "fault_prob": 0.06,
    "fault_target": (80000.0, 0.0015),
    "checkpoint_intervals": [None, 2, 6],
    "hetero_machines": "knl*3,knl@0.4",
}

NETWORKS = ("cray-aries", "ethernet-10g")
MAX_WAIT = 2e-4


def run_sweep(
    scale,
    edgefactor,
    targets,
    ranks,
    max_batches,
    nqueries,
    root_pool,
    zipf,
    fault_prob,
    fault_target,
    checkpoint_intervals,
    hetero_machines,
    seed=1,
):
    graph = kronecker(scale, edgefactor, seed=2023)
    shared = dict(
        nqueries=nqueries,
        root_pool=root_pool,
        zipf=zipf,
        seed=seed,
        max_wait=MAX_WAIT,
        cache=False,
    )
    plan = plan_capacity(
        graph,
        targets,
        ranks=ranks,
        networks=NETWORKS,
        max_batches=max_batches,
        machine="knl",
        **shared,
    )
    # Checkpoint policy: the heaviest Aries cell under rank failures.
    faulty = plan_capacity(
        graph,
        [fault_target],
        ranks=(max(ranks),),
        networks=("cray-aries",),
        max_batches=(max(max_batches),),
        machine="knl",
        rank_failure_prob=fault_prob,
        checkpoint_intervals=checkpoint_intervals,
        **shared,
    )
    placement = compare_placement(
        graph,
        hetero_machines,
        network="cray-aries",
        max_batch=8,
        target=targets[0],
        nqueries=nqueries,
        root_pool=root_pool,
        zipf=zipf,
        seed=seed,
        max_wait=1e-5,
    )
    return {
        "workload": {
            "scale": scale,
            "edgefactor": edgefactor,
            "n": graph.n,
            "m": graph.m,
            "seed": seed,
            "graph_seed": 2023,
            "C": 16,
            "nqueries": nqueries,
            "root_pool": root_pool,
            "zipf": zipf,
            "max_wait": MAX_WAIT,
            "semiring": "tropical",
            "machine": "knl",
            "cache": False,
        },
        "plan": plan,
        "faulty": faulty,
        "placement": placement,
        "deterministic": True,
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    plan = payload["plan"]
    print(
        f"\n=== Capacity planning (scale={w['scale']}, n={w['n']}, "
        f"m={w['m']}, {w['nqueries']} queries, zipf s={w['zipf']:g} "
        f"over {w['root_pool']} roots, machine={w['machine']}) ==="
    )
    rows = []
    for row in plan["grid"]:
        cells = ["yes" if c["feasible"] else "no" for c in row["per_target"]]
        rows.append(
            [row["ranks"], row["network"], row["max_batch"]]
            + [f"{c['latency_p99_s'] * 1e3:.3f}" for c in row["per_target"]]
            + cells
        )
    headers = (
        ["ranks", "network", "batch"]
        + [f"p99@{t['qps']:g}" for t in plan["targets"]]
        + [f"ok@{t['qps']:g}" for t in plan["targets"]]
    )
    print_table("capacity grid (p99 in ms per qps target)", headers, rows)
    for t in plan["targets"]:
        best = t["best"]
        where = (
            "infeasible"
            if best is None
            else f"{best['ranks']} x {best['machine']} on "
            f"{best['network']}, max_batch={best['max_batch']} "
            f"(p99 {best['latency_p99_s'] * 1e3:.3f} ms)"
        )
        print(
            f"  {t['qps']:>8g} qps @ p99<={t['p99_target_s'] * 1e3:g} ms: "
            f"{t['feasible_configs']}/{len(plan['grid'])} feasible -> "
            f"{where}"
        )
    fcell = payload["faulty"]["grid"][0]["per_target"][0]
    fw = payload["faulty"]["workload"]
    print(
        f"\ncheckpoint policy at p(fail)={fw['rank_failure_prob']:g} "
        f"({payload['faulty']['grid'][0]['ranks']} ranks, cray-aries):"
    )
    for ck, p99 in sorted(fcell["interval_p99_s"].items()):
        chosen = " <- chosen" if p99 == fcell["latency_p99_s"] else ""
        print(f"  ckpt {ck:>5s}: p99 {p99 * 1e3:.3f} ms{chosen}")
    pl = payload["placement"]
    print(
        f"\nheterogeneous placement on {'+'.join(pl['machines'])} "
        f"({pl['network']}, max_batch={pl['max_batch']}):"
    )
    for label in ("weighted", "uniform"):
        r = pl[label]
        print(
            f"  {label:9s} pool sweep {r['pool_sweep_s'] * 1e3:.3f} ms  "
            f"p99 {r['latency_p99_s'] * 1e3:.3f} ms  "
            f"rows/rank {r['work_per_rank']}"
        )
    print(
        f"  weighted is {pl['sweep_improvement']:.2f}x on the sweep, "
        f"{pl['p99_improvement']:.2f}x on served p99"
    )


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=15)
    ap.add_argument("--edgefactor", type=float, default=32)
    ap.add_argument("--nqueries", type=int, default=768)
    ap.add_argument("--root-pool", type=int, default=128)
    ap.add_argument("--zipf", type=float, default=0.6)
    ap.add_argument("--ranks", default="1,2,4,8,16")
    ap.add_argument("--max-batches", default="8,32")
    ap.add_argument(
        "--targets",
        default="20000:0.8,80000:0.8,160000:0.8",
        help="comma list of QPS:P99_MS targets",
    )
    ap.add_argument("--fault-prob", type=float, default=0.06)
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true", help="CI smoke configuration")
    ap.add_argument("--output", default="BENCH_capacity.json", help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        cfg = dict(QUICK)
    else:
        cfg = {
            "scale": args.scale,
            "edgefactor": args.edgefactor,
            "targets": [
                (float(t.split(":")[0]), float(t.split(":")[1]) * 1e-3)
                for t in args.targets.split(",")
            ],
            "ranks": [int(r) for r in args.ranks.split(",")],
            "max_batches": [int(b) for b in args.max_batches.split(",")],
            "nqueries": args.nqueries,
            "root_pool": args.root_pool,
            "zipf": args.zipf,
            "fault_prob": args.fault_prob,
            "fault_target": QUICK["fault_target"],
            "checkpoint_intervals": QUICK["checkpoint_intervals"],
            "hetero_machines": QUICK["hetero_machines"],
        }

    payload = run_sweep(
        cfg["scale"],
        cfg["edgefactor"],
        cfg["targets"],
        cfg["ranks"],
        cfg["max_batches"],
        cfg["nqueries"],
        cfg["root_pool"],
        cfg["zipf"],
        cfg["fault_prob"],
        cfg["fault_target"],
        cfg["checkpoint_intervals"],
        cfg["hetero_machines"],
        seed=args.seed,
    )
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")

    # Sanity: the planner must find at least one feasible configuration
    # for the easiest target, and weighted placement must strictly beat
    # uniform on the skewed cluster (the heterogeneous acceptance bar).
    if payload["plan"]["targets"][0]["best"] is None:
        print(
            "ERROR: no feasible configuration for the easiest target",
            file=sys.stderr,
        )
        return 1
    pl = payload["placement"]
    if not (
        pl["weighted"]["pool_sweep_s"] < pl["uniform"]["pool_sweep_s"]
        and pl["weighted"]["latency_p99_s"] < pl["uniform"]["latency_p99_s"]
    ):
        print(
            "ERROR: weighted placement did not beat uniform on the skewed cluster",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
