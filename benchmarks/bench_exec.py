#!/usr/bin/env python
"""Worker-count ablation of the executed row-sharded SpMM backend.

Runs the Graph500-style workload (Kronecker graph, sampled valid roots,
SlimSell C=16, sel-max, SlimWork) through ``repro.exec`` once per worker
count W ∈ {1, 2, 4}, over the *same* prebuilt representation, and reports
the measured per-layer shard timings: total compute seconds, the
critical-path (slowest-shard) seconds the distributed model charges as
``t_local``, and the exchange seconds where it charges collectives.

The gated figure of merit is ``speedup_critical_path``: the W=1 compute
total over the W-worker critical-path total, measured by the serial
backend (each shard timed alone, so per-shard attribution is clean).  It
is the measured analogue of the dist model's local-phase scaling and is
portable to a single-core CI host, where *wall-clock* parallel speedup
is unmeasurable by construction — the threads backend's wall times are
reported for reference but never gated.  Every run is checked
bit-identical (distances and parents) to the plain batched engine before
its timing is trusted, and the sweep ends by fitting the ``knl`` /
``cray-aries`` descriptors to the measured run (the calibration loop).

Standalone script (not a pytest bench): results go to an ASCII table on
stdout and a JSON file (default ``BENCH_exec.json`` in the current
directory) that CI uploads as the perf-trajectory artifact.

Usage::

    python benchmarks/bench_exec.py              # scale 14, 64 roots
    python benchmarks/bench_exec.py --quick      # CI smoke scale
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from _common import write_bench_json

from repro.bfs.msbfs import MultiSourceBFS
from repro.dist.calibrate import calibrate
from repro.exec.engine import ExecMultiSourceBFS
from repro.formats.slimsell import SlimSell
from repro.graph500 import sample_roots
from repro.graphs.kronecker import kronecker

#: CI smoke configuration, shared with ``benchmarks/check_regression.py`` so
#: the regression gate re-runs exactly the workload whose numbers are stored
#: as the committed quick baseline.
QUICK = {"scale": 12, "edgefactor": 16, "nroots": 32, "workers": [1, 2, 4]}


def _identical(got, exp) -> bool:
    return all(np.array_equal(a.dist, b.dist)
               and np.array_equal(a.parent, b.parent)
               for a, b in zip(got, exp))


def _timed_run(engine, roots):
    """One warmed, profiled run: ``(results, wall_s, profile)``."""
    engine.run(roots)  # warm operand caches and worker pools
    engine.reset_profile()
    t0 = time.perf_counter()
    results = engine.run(roots)
    wall_s = time.perf_counter() - t0
    return results, wall_s, list(engine.layer_profile)


def run_sweep(scale: int, edgefactor: float, nroots: int,
              workers: list[int], seed: int = 1) -> dict:
    graph = kronecker(scale, edgefactor, seed=seed)
    t0 = time.perf_counter()
    rep = SlimSell(graph, 16, graph.n)
    build_s = time.perf_counter() - t0

    roots = sample_roots(graph, nroots, seed)
    expected = MultiSourceBFS(rep, "sel-max", slimwork=True).run(roots)

    rows = []
    base_compute = None
    for W in sorted(set(workers)):
        with ExecMultiSourceBFS(rep, "sel-max", workers=W, backend="serial",
                                slimwork=True) as engine:
            results, wall_s, prof = _timed_run(engine, roots)
        compute_s = sum(layer.t_compute_total_s for layer in prof)
        critical_s = sum(layer.t_local_s for layer in prof)
        if base_compute is None:
            if W != 1:
                raise SystemExit("workers must include 1 (the baseline)")
            base_compute = compute_s
        rows.append({
            "workers": W,
            "wall_s": wall_s,
            "compute_s": compute_s,
            "critical_path_s": critical_s,
            "exchange_s": sum(layer.t_exchange_s for layer in prof),
            "speedup_critical_path": base_compute / critical_s,
            "identical_to_msbfs": bool(_identical(results, expected)),
        })

    threads_rows = []
    for W in sorted(set(workers)):
        with ExecMultiSourceBFS(rep, "sel-max", workers=W, backend="threads",
                                slimwork=True) as engine:
            results, wall_s, _ = _timed_run(engine, roots)
        threads_rows.append({
            "workers": W,
            "wall_s": wall_s,
            "identical_to_msbfs": bool(_identical(results, expected)),
        })

    wmax = max(workers)
    rpt = calibrate(rep, roots, workers=wmax, machine="knl",
                    network="cray-aries", slimwork=True)
    return {
        "workload": {
            "scale": scale, "edgefactor": edgefactor,
            "n": graph.n, "m": graph.m, "nroots": int(roots.size),
            "seed": seed, "C": 16, "semiring": "sel-max", "slimwork": True,
            "representation": "slimsell", "backend": "serial",
            "build_s": build_s,
        },
        "workers": rows,
        "threads_wall": {
            "note": "wall clock of the GIL-releasing thread pool; "
                    "informational only (never gated: it tracks the host's "
                    "core count, not the code)",
            "rows": threads_rows,
        },
        "calibration": {
            "workers": wmax,
            "machine": rpt.machine.name,
            "network": rpt.network.name,
            "compute_scale": rpt.compute_scale,
            "comm_scale": rpt.comm_scale,
            "measured_local_s": rpt.measured_local_s,
            "modeled_local_s": rpt.modeled_local_s,
            "measured_exchange_s": rpt.measured_exchange_s,
            "modeled_comm_s": rpt.modeled_comm_s,
        },
    }


def print_report(payload: dict) -> None:
    w = payload["workload"]
    print(f"\n=== Executed row-sharded sweep (scale={w['scale']}, "
          f"edgefactor={w['edgefactor']}, n={w['n']}, m={w['m']}, "
          f"{w['nroots']} roots) ===")
    hdr = (f"{'W':>4s}  {'wall s':>9s}  {'compute s':>10s}  "
           f"{'critical s':>10s}  {'exchange s':>10s}  {'speedup':>8s}  "
           "identical")
    print(hdr)
    print("-" * len(hdr))
    for r in payload["workers"]:
        print(f"{r['workers']:4d}  {r['wall_s']:9.3f}  "
              f"{r['compute_s']:10.4f}  {r['critical_path_s']:10.4f}  "
              f"{r['exchange_s']:10.4f}  "
              f"{r['speedup_critical_path']:7.2f}x  "
              f"{r['identical_to_msbfs']}")
    print("threads backend wall clock (reference, ungated): "
          + ", ".join(f"W={r['workers']}: {r['wall_s']:.3f}s"
                      for r in payload["threads_wall"]["rows"]))
    c = payload["calibration"]
    print(f"calibration (W={c['workers']}, {c['machine']}/{c['network']}): "
          f"compute_scale={c['compute_scale']:.3g} "
          f"comm_scale={c['comm_scale']:.3g}")


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=int, default=14)
    ap.add_argument("--edgefactor", type=float, default=16)
    ap.add_argument("--nroots", type=int, default=64)
    ap.add_argument("--workers", default="1,2,4",
                    help="comma-separated worker counts (must include 1)")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--quick", action="store_true",
                    help="CI smoke configuration (scale 12, 32 roots, "
                         "W in {1,2,4})")
    ap.add_argument("--output", default="BENCH_exec.json",
                    help="JSON results path")
    args = ap.parse_args(argv)

    if args.quick:
        scale, nroots = QUICK["scale"], QUICK["nroots"]
        edgefactor, workers = QUICK["edgefactor"], QUICK["workers"]
    else:
        scale, nroots, edgefactor = args.scale, args.nroots, args.edgefactor
        workers = [int(w) for w in args.workers.split(",")]

    payload = run_sweep(scale, edgefactor, nroots, workers, seed=args.seed)
    print_report(payload)
    write_bench_json(args.output, payload)
    print(f"\nwrote {args.output}")
    diverged = (
        [r for r in payload["workers"] if not r["identical_to_msbfs"]]
        + [r for r in payload["threads_wall"]["rows"]
           if not r["identical_to_msbfs"]])
    if diverged:
        print("ERROR: a sharded run diverged from the batched baseline",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
